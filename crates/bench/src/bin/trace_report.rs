//! **trace-report**: summarizes a JSONL tuning trace written via the
//! experiment binaries' `--trace <path>` flag (see docs/TELEMETRY.md).
//!
//! Prints, from the typed events alone:
//!
//! - the trace's table of contents (event counts);
//! - best-latency-vs-trials curves per task (`MeasureBatch`);
//! - the phase-time breakdown from the final `PhaseProfile` snapshot;
//! - cost-model accuracy drift over retrains (`ModelRetrain`);
//! - the task scheduler's per-task allocation table (`SchedulerStep`);
//! - aggregate measurement-failure kinds.
//!
//! With `--explain`, additionally attributes the search outcome (see
//! docs/EXPLAIN.md):
//!
//! - sketch-rule efficacy (proposed → survived → measured → new-best);
//! - evolution-operator efficacy (same funnel, per operator);
//! - the lineage of each task's best state (`ImprovementAttributed`);
//! - held-out cost-model calibration over time (`ModelCalibration`).
//!
//! With `--serve <journal.jsonl>` it reports on an `ansor-serve` daemon
//! instead: the per-job lifecycle table (queue wait, run time, outcome,
//! best GFLOPS) from the job journal, plus fleet-wide sketch-rule and
//! evolution-operator efficacy aggregated across every per-job trace the
//! journal points at (see docs/SERVING.md).
//!
//! Run: `trace-report <trace.jsonl> [--explain] [--json <path>] [--strict]
//! [--follow] [--events <path>]`
//! or:  `trace-report --serve <journal.jsonl> [--json <path>] [--strict]`
//!
//! `--json <path>` writes every table (including the explain sections) as
//! one JSON document; `--strict` exits nonzero when the trace contains
//! corrupt (unparseable) lines; `--follow` tails a live trace (poll +
//! seek, tolerating a partial last line) printing progress as it lands and
//! emitting the full report once the run's final `PhaseProfile` arrives;
//! `--events <path>` writes the canonical event stream (event JSON per
//! line, wall-clock fields and `PhaseProfile` stripped — the
//! determinism-comparable form, see docs/TELEMETRY.md).

use std::collections::BTreeMap;
use std::io::{Seek as _, SeekFrom, Write as _};

use ansor_bench::{fmt_seconds, print_table};
use serde::Serialize;
use telemetry::report::{
    self, CalibrationPoint, Efficacy, ImprovementPoint, ModelPoint, SurrogatePoint,
};
use telemetry::{HistogramSummary, TraceLine};

/// Everything `trace-report` can print, as one serializable document
/// (the `--json` output).
#[derive(Serialize)]
struct Report {
    trace: String,
    events: usize,
    corrupt_lines_skipped: usize,
    event_counts: BTreeMap<String, u64>,
    best_curves: BTreeMap<String, Vec<(u64, f64)>>,
    phase_breakdown: Vec<(String, HistogramSummary)>,
    model_drift: Vec<ModelPoint>,
    allocations: BTreeMap<String, u64>,
    final_counters: BTreeMap<String, u64>,
    error_kinds: BTreeMap<String, u64>,
    rule_efficacy: BTreeMap<String, Efficacy>,
    operator_efficacy: BTreeMap<String, Efficacy>,
    improvements: BTreeMap<String, Vec<ImprovementPoint>>,
    calibration: Vec<CalibrationPoint>,
    surrogate_calibration: Vec<SurrogatePoint>,
    /// Prerank survival funnel per evolution operator:
    /// `op -> (scored, kept)` from the `surrogate/op/*` counters. Empty
    /// when no prerank stage ran.
    surrogate_funnel: BTreeMap<String, (u64, u64)>,
}

impl Report {
    fn build(path: &str, lines: &[TraceLine], skipped: usize) -> Report {
        Report {
            trace: path.to_string(),
            events: lines.len(),
            corrupt_lines_skipped: skipped,
            event_counts: report::event_counts(lines)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            best_curves: report::best_curves(lines),
            phase_breakdown: report::phase_breakdown(lines),
            model_drift: report::model_drift(lines),
            allocations: report::allocations(lines),
            final_counters: report::final_counters(lines),
            error_kinds: report::error_kinds(lines),
            rule_efficacy: report::rule_efficacy(lines),
            operator_efficacy: report::operator_efficacy(lines),
            improvements: report::improvements(lines),
            calibration: report::calibration(lines),
            surrogate_calibration: report::surrogate_calibration(lines),
            surrogate_funnel: surrogate_funnel(&report::final_counters(lines)),
        }
    }
}

/// `op -> (scored, kept)` parsed from the `surrogate/op/<op>/{scored,kept}`
/// counters of the final snapshot.
fn surrogate_funnel(counters: &BTreeMap<String, u64>) -> BTreeMap<String, (u64, u64)> {
    let mut out: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (name, &n) in counters {
        if let Some(rest) = name.strip_prefix("surrogate/op/") {
            if let Some(op) = rest.strip_suffix("/scored") {
                out.entry(op.to_string()).or_default().0 = n;
            } else if let Some(op) = rest.strip_suffix("/kept") {
                out.entry(op.to_string()).or_default().1 = n;
            }
        }
    }
    out
}

struct Options {
    path: String,
    explain: bool,
    json: Option<String>,
    strict: bool,
    follow: bool,
    events: Option<String>,
    serve: Option<String>,
}

fn parse_args() -> Options {
    let mut path = None;
    let mut explain = false;
    let mut json = None;
    let mut strict = false;
    let mut follow = false;
    let mut events = None;
    let mut serve = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--explain" => explain = true,
            "--json" => json = it.next(),
            "--strict" => strict = true,
            "--follow" => follow = true,
            "--events" => events = it.next(),
            "--serve" => serve = it.next(),
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!("trace-report: unrecognized argument {other}");
                usage_exit();
            }
        }
    }
    // `--serve` takes the journal path itself; a positional trace path is
    // only required in the default (single-trace) mode.
    let path = match (path, &serve) {
        (Some(p), _) => p,
        (None, Some(_)) => String::new(),
        (None, None) => usage_exit(),
    };
    Options {
        path,
        explain,
        json,
        strict,
        follow,
        events,
        serve,
    }
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: trace-report <trace.jsonl> [--explain] [--json <path>] [--strict] \
         [--follow] [--events <path>]\n\
         \x20      trace-report --serve <journal.jsonl> [--json <path>] [--strict]"
    );
    std::process::exit(2);
}

/// The `--serve` mode: per-job lifecycle table and fleet-wide efficacy
/// from an `ansor-serve` job journal.
fn serve_mode(journal: &str, opts: &Options) -> ! {
    use ansor_bench::serve_report::{job_rows, ServeReport};
    let report = match ServeReport::build(std::path::Path::new(journal)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-report: cannot read journal {journal}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "journal: {journal} ({} events, {} corrupt lines skipped, {} daemon start{})",
        report.events,
        report.corrupt_lines_skipped,
        report.daemon_starts,
        if report.daemon_starts == 1 { "" } else { "s" }
    );
    if !report.jobs.is_empty() {
        print_table(
            "Jobs (submit order)",
            &[
                "job",
                "task",
                "outcome",
                "trials",
                "queue wait",
                "run time",
                "GFLOPS",
                "absorbed",
            ],
            &job_rows(&report),
        );
    }
    if report.traces_read + report.traces_missing > 0 {
        println!(
            "fleet traces: {} read, {} missing",
            report.traces_read, report.traces_missing
        );
    }
    if !report.rule_efficacy.is_empty() {
        print_table(
            "Fleet sketch-rule efficacy (all jobs)",
            &[
                "rule", "proposed", "survived", "measured", "new best", "hit rate",
            ],
            &efficacy_rows(&report.rule_efficacy),
        );
    }
    if !report.operator_efficacy.is_empty() {
        print_table(
            "Fleet evolution-operator efficacy (all jobs)",
            &[
                "operator", "proposed", "survived", "measured", "new best", "hit rate",
            ],
            &efficacy_rows(&report.operator_efficacy),
        );
    }
    if let Some(json_path) = &opts.json {
        let json = serde_json::to_string_pretty(&report).expect("serializable serve report");
        std::fs::write(json_path, json).unwrap_or_else(|e| {
            eprintln!("trace-report: cannot write {json_path}: {e}");
            std::process::exit(1);
        });
        println!("(wrote {json_path})");
    }
    if opts.strict && report.corrupt_lines_skipped > 0 {
        eprintln!(
            "trace-report: --strict: {} corrupt lines in {journal}",
            report.corrupt_lines_skipped
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Tail a live trace file: poll + seek from the last offset, parse only
/// complete lines (a partially written last line stays buffered until its
/// newline arrives), print progress events as they land, and return the
/// accumulated `(lines, skipped)` once the run's final `PhaseProfile`
/// (emitted by `Telemetry::flush`) marks the trace complete.
fn follow_trace(path: &std::path::Path) -> (Vec<TraceLine>, usize) {
    let mut offset = 0u64;
    let mut pending: Vec<u8> = Vec::new();
    let mut lines: Vec<TraceLine> = Vec::new();
    let mut skipped = 0usize;
    let mut announced = false;
    loop {
        if let Ok(mut f) = std::fs::File::open(path) {
            if !announced {
                println!("following {} (waiting for PhaseProfile)…", path.display());
                announced = true;
            }
            let mut chunk = Vec::new();
            if f.seek(SeekFrom::Start(offset)).is_ok() {
                use std::io::Read as _;
                if f.read_to_end(&mut chunk).is_ok() {
                    offset += chunk.len() as u64;
                    pending.extend_from_slice(&chunk);
                }
            }
            while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = pending.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&raw);
                let text = text.trim();
                if text.is_empty() {
                    continue;
                }
                match serde_json::from_str::<TraceLine>(text) {
                    Ok(line) => {
                        let done = matches!(line.event, telemetry::TraceEvent::PhaseProfile { .. });
                        print_live(&line);
                        lines.push(line);
                        if done {
                            return (lines, skipped);
                        }
                    }
                    Err(_) => skipped += 1,
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

/// One-line live view of the events worth narrating while following.
fn print_live(line: &TraceLine) {
    use telemetry::TraceEvent::*;
    match &line.event {
        RoundStart {
            task,
            round,
            trials_so_far,
        } => println!("[{task}] round {round} ({trials_so_far} trials so far)"),
        ImprovementAttributed {
            task, seconds, op, ..
        } => println!("[{task}] new best {} via {op}", fmt_seconds(*seconds)),
        TuningFinished {
            task,
            trials,
            best_seconds,
        } => {
            let best = best_seconds.map(fmt_seconds).unwrap_or_else(|| "-".into());
            println!("[{task}] finished: {trials} trials, best {best}");
        }
        PhaseProfile { .. } => println!("— run complete —"),
        _ => {}
    }
}

fn main() {
    let opts = parse_args();
    if let Some(journal) = opts.serve.clone() {
        serve_mode(&journal, &opts);
    }
    let (lines, skipped) = if opts.follow {
        follow_trace(std::path::Path::new(&opts.path))
    } else {
        match telemetry::read_trace_file(std::path::Path::new(&opts.path)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("trace-report: cannot read {}: {e}", opts.path);
                std::process::exit(1);
            }
        }
    };
    println!(
        "trace: {} ({} events, {skipped} corrupt lines skipped)",
        opts.path,
        lines.len()
    );
    let rep = Report::build(&opts.path, &lines, skipped);
    if !lines.is_empty() {
        print_summary(&rep);
        if opts.explain {
            print_explain(&rep);
        }
    }
    if let Some(json_path) = &opts.json {
        let json = serde_json::to_string_pretty(&rep).expect("serializable report");
        let mut f = std::fs::File::create(json_path).unwrap_or_else(|e| {
            eprintln!("trace-report: cannot create {json_path}: {e}");
            std::process::exit(1);
        });
        f.write_all(json.as_bytes()).expect("write json report");
        println!("(wrote {json_path})");
    }
    if let Some(events_path) = &opts.events {
        // The canonical, determinism-comparable event stream: event JSON
        // per line, wall-clock envelope (`seq`/`t_ms`) and `PhaseProfile`
        // dropped. Two same-seed runs must produce byte-identical files
        // here (the CI live-smoke job diffs exporter-on vs exporter-off).
        let mut out = String::new();
        for line in &lines {
            if matches!(line.event, telemetry::TraceEvent::PhaseProfile { .. }) {
                continue;
            }
            out.push_str(&serde_json::to_string(&line.event).expect("event serializes"));
            out.push('\n');
        }
        std::fs::write(events_path, out).unwrap_or_else(|e| {
            eprintln!("trace-report: cannot write {events_path}: {e}");
            std::process::exit(1);
        });
        println!("(wrote canonical events to {events_path})");
    }
    if opts.strict && skipped > 0 {
        eprintln!(
            "trace-report: --strict: {skipped} corrupt lines in {}",
            opts.path
        );
        std::process::exit(1);
    }
}

/// The default tables: event counts, convergence curves, phase times,
/// model drift, scheduler allocations, cache counters, failure kinds.
fn print_summary(rep: &Report) {
    print_table(
        "Event counts",
        &["event", "count"],
        &rep.event_counts
            .iter()
            .map(|(k, v)| vec![k.to_string(), v.to_string()])
            .collect::<Vec<_>>(),
    );

    if !rep.best_curves.is_empty() {
        let rows: Vec<Vec<String>> = rep
            .best_curves
            .iter()
            .map(|(task, pts)| {
                let (_, first_b) = pts.first().expect("non-empty curve");
                let (last_t, last_b) = pts.last().expect("non-empty curve");
                vec![
                    task.clone(),
                    last_t.to_string(),
                    fmt_seconds(*first_b),
                    fmt_seconds(*last_b),
                    format!("{:.2}x", first_b / last_b),
                    sparkline(pts),
                ]
            })
            .collect();
        print_table(
            "Best latency vs. trials (per task)",
            &[
                "task",
                "trials",
                "first best",
                "final best",
                "gain",
                "curve",
            ],
            &rows,
        );
    }

    if !rep.phase_breakdown.is_empty() {
        let total: f64 = rep.phase_breakdown.iter().map(|(_, h)| h.sum).sum();
        let rows: Vec<Vec<String>> = rep
            .phase_breakdown
            .iter()
            .map(|(name, h)| {
                vec![
                    name.trim_start_matches("phase/").to_string(),
                    h.count.to_string(),
                    fmt_seconds(h.sum),
                    format!("{:.1}%", 100.0 * h.sum / total.max(1e-30)),
                    fmt_seconds(h.p50),
                    fmt_seconds(h.p99),
                ]
            })
            .collect();
        print_table(
            "Phase-time breakdown (final snapshot)",
            &["phase", "calls", "total", "share", "p50", "p99"],
            &rows,
        );
    }

    if !rep.model_drift.is_empty() {
        let rows: Vec<Vec<String>> = sample_rows(&rep.model_drift, 12)
            .map(|p| {
                vec![
                    p.seq.to_string(),
                    p.task.clone(),
                    p.pairs.to_string(),
                    format!("{:.3}", p.ranking_loss),
                    format!("{:.3}", p.rank_corr),
                ]
            })
            .collect();
        print_table(
            "Cost-model accuracy drift (retrains over time)",
            &["seq", "task", "pairs", "ranking loss", "rank corr"],
            &rows,
        );
    }

    if !rep.allocations.is_empty() {
        let total: u64 = rep.allocations.values().sum();
        let rows: Vec<Vec<String>> = rep
            .allocations
            .iter()
            .map(|(task, n)| {
                vec![
                    task.clone(),
                    n.to_string(),
                    format!("{:.1}%", 100.0 * *n as f64 / total.max(1) as f64),
                ]
            })
            .collect();
        print_table(
            "Task-scheduler allocations",
            &["task", "rounds", "share"],
            &rows,
        );
    }

    if !rep.final_counters.is_empty() {
        // Signature-cache effectiveness: hit/miss counter pairs from the
        // final snapshot (features/cache_*, model/score_cache_*).
        let pairs: [(&str, &str, &str); 2] = [
            (
                "feature extraction",
                "features/cache_hits",
                "features/cache_misses",
            ),
            (
                "model scoring",
                "model/score_cache_hits",
                "model/score_cache_misses",
            ),
        ];
        let rows: Vec<Vec<String>> = pairs
            .iter()
            .filter_map(|(label, hk, mk)| {
                let (h, m) = (
                    *rep.final_counters.get(*hk).unwrap_or(&0),
                    *rep.final_counters.get(*mk).unwrap_or(&0),
                );
                (h + m > 0).then(|| {
                    vec![
                        label.to_string(),
                        h.to_string(),
                        m.to_string(),
                        format!("{:.1}%", 100.0 * h as f64 / (h + m) as f64),
                    ]
                })
            })
            .collect();
        if !rows.is_empty() {
            print_table(
                "Signature-cache effectiveness",
                &["cache", "hits", "misses", "hit rate"],
                &rows,
            );
        }
        if let Some(n) = rep.final_counters.get("features/extract_failed") {
            println!("feature extraction failures recorded: {n}");
        }
    }

    if !rep.error_kinds.is_empty() {
        print_table(
            "Measurement failures by kind",
            &["kind", "count"],
            &rep.error_kinds
                .iter()
                .map(|(k, v)| vec![k.clone(), v.to_string()])
                .collect::<Vec<_>>(),
        );
    }
}

/// The `--explain` attribution tables (see docs/EXPLAIN.md).
fn print_explain(rep: &Report) {
    if !rep.rule_efficacy.is_empty() {
        print_table(
            "Sketch-rule efficacy (whole run)",
            &[
                "rule", "proposed", "survived", "measured", "new best", "hit rate",
            ],
            &efficacy_rows(&rep.rule_efficacy),
        );
    }
    if !rep.operator_efficacy.is_empty() {
        print_table(
            "Evolution-operator efficacy (whole run)",
            &[
                "operator", "proposed", "survived", "measured", "new best", "hit rate",
            ],
            &efficacy_rows(&rep.operator_efficacy),
        );
    }
    if !rep.improvements.is_empty() {
        let rows: Vec<Vec<String>> = rep
            .improvements
            .iter()
            .map(|(task, pts)| {
                let last = pts.last().expect("non-empty improvement list");
                vec![
                    task.clone(),
                    fmt_seconds(last.seconds),
                    last.trial.to_string(),
                    last.op.clone(),
                    last.generation.to_string(),
                    pts.len().to_string(),
                    last.rules.join(" → "),
                ]
            })
            .collect();
        print_table(
            "Lineage of best (per task)",
            &[
                "task",
                "best",
                "trial",
                "operator",
                "gen",
                "improvements",
                "sketch-rule chain",
            ],
            &rows,
        );
    }
    if !rep.calibration.is_empty() {
        let rows: Vec<Vec<String>> = sample_rows(&rep.calibration, 12)
            .map(|p| {
                vec![
                    p.seq.to_string(),
                    p.task.clone(),
                    p.batch.to_string(),
                    p.pairs.to_string(),
                    format!("{:.3}", p.rank_acc),
                    format!("{:.2}", p.top1_recall),
                    format!("{:.2}", p.top8_recall),
                    format!("{:.3}", p.err_p50),
                    format!("{:.3}", p.err_p90),
                ]
            })
            .collect();
        print_table(
            "Held-out model calibration over time",
            &[
                "seq", "task", "batch", "pairs", "rank acc", "top-1", "top-8", "err p50", "err p90",
            ],
            &rows,
        );
    }
    if !rep.surrogate_calibration.is_empty() {
        let rows: Vec<Vec<String>> = sample_rows(&rep.surrogate_calibration, 12)
            .map(|p| {
                vec![
                    p.seq.to_string(),
                    p.task.clone(),
                    p.batch.to_string(),
                    p.kept.to_string(),
                    p.pairs.to_string(),
                    format!("{:.3}", p.rank_acc),
                    if p.top1_agree { "yes" } else { "no" }.to_string(),
                ]
            })
            .collect();
        print_table(
            "Surrogate-vs-GBDT rank accuracy over time",
            &["seq", "task", "batch", "kept", "pairs", "rank acc", "top-1"],
            &rows,
        );
        let acc_curve: Vec<(u64, f64)> = rep
            .surrogate_calibration
            .iter()
            .map(|p| (p.seq, p.rank_acc))
            .collect();
        println!("rank-accuracy trend: {}", sparkline(&acc_curve));
    }
    if !rep.surrogate_funnel.is_empty() {
        let rows: Vec<Vec<String>> = rep
            .surrogate_funnel
            .iter()
            .map(|(op, (scored, kept))| {
                vec![
                    op.clone(),
                    scored.to_string(),
                    kept.to_string(),
                    format!("{:.1}%", 100.0 * *kept as f64 / (*scored).max(1) as f64),
                ]
            })
            .collect();
        print_table(
            "Prerank survival funnel (per evolution operator)",
            &["operator", "scored", "kept", "keep rate"],
            &rows,
        );
    }
}

/// Table rows for a rule/operator efficacy map: funnel counts plus the
/// new-best hit rate among measured candidates.
fn efficacy_rows(map: &BTreeMap<String, Efficacy>) -> Vec<Vec<String>> {
    map.iter()
        .map(|(name, e)| {
            vec![
                name.clone(),
                e.proposed.to_string(),
                e.survived.to_string(),
                e.measured.to_string(),
                e.new_best.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * e.new_best as f64 / e.measured.max(1) as f64
                ),
            ]
        })
        .collect()
}

/// At most `cap` evenly spaced items, keeping trace order (long runs
/// produce hundreds of retrain/calibration points; the table shows a
/// sample, the `--json` document carries them all).
fn sample_rows<T>(items: &[T], cap: usize) -> impl Iterator<Item = &T> {
    items.iter().step_by(items.len().div_ceil(cap))
}

/// A coarse text sparkline of the best-latency curve: lower is better, so
/// the curve should descend left to right.
fn sparkline(pts: &[(u64, f64)]) -> String {
    const GLYPHS: [char; 5] = ['▁', '▂', '▄', '▆', '█'];
    let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let hi = pts.iter().map(|p| p.1).fold(0.0f64, f64::max);
    if !(lo.is_finite() && hi.is_finite()) || pts.is_empty() {
        return String::new();
    }
    let span = (hi - lo).max(1e-30);
    // Sample at most 24 points.
    let step = pts.len().div_ceil(24);
    pts.iter()
        .step_by(step)
        .map(|(_, b)| {
            let idx = (((b - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}
