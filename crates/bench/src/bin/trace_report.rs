//! **trace-report**: summarizes a JSONL tuning trace written via the
//! experiment binaries' `--trace <path>` flag (see docs/TELEMETRY.md).
//!
//! Prints, from the typed events alone:
//!
//! - the trace's table of contents (event counts);
//! - best-latency-vs-trials curves per task (`MeasureBatch`);
//! - the phase-time breakdown from the final `PhaseProfile` snapshot;
//! - cost-model accuracy drift over retrains (`ModelRetrain`);
//! - the task scheduler's per-task allocation table (`SchedulerStep`);
//! - aggregate measurement-failure kinds.
//!
//! Run: `trace-report <trace.jsonl>`

use ansor_bench::{fmt_seconds, print_table};
use telemetry::report;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace-report <trace.jsonl>");
            std::process::exit(2);
        }
    };
    let (lines, skipped) = match telemetry::read_trace_file(std::path::Path::new(&path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "trace: {path} ({} events, {skipped} corrupt lines skipped)",
        lines.len()
    );
    if lines.is_empty() {
        return;
    }

    let counts = report::event_counts(&lines);
    print_table(
        "Event counts",
        &["event", "count"],
        &counts
            .iter()
            .map(|(k, v)| vec![k.to_string(), v.to_string()])
            .collect::<Vec<_>>(),
    );

    let curves = report::best_curves(&lines);
    if !curves.is_empty() {
        let rows: Vec<Vec<String>> = curves
            .iter()
            .map(|(task, pts)| {
                let (_, first_b) = pts.first().expect("non-empty curve");
                let (last_t, last_b) = pts.last().expect("non-empty curve");
                vec![
                    task.clone(),
                    last_t.to_string(),
                    fmt_seconds(*first_b),
                    fmt_seconds(*last_b),
                    format!("{:.2}x", first_b / last_b),
                    sparkline(pts),
                ]
            })
            .collect();
        print_table(
            "Best latency vs. trials (per task)",
            &[
                "task",
                "trials",
                "first best",
                "final best",
                "gain",
                "curve",
            ],
            &rows,
        );
    }

    let phases = report::phase_breakdown(&lines);
    if !phases.is_empty() {
        let total: f64 = phases.iter().map(|(_, h)| h.sum).sum();
        let rows: Vec<Vec<String>> = phases
            .iter()
            .map(|(name, h)| {
                vec![
                    name.trim_start_matches("phase/").to_string(),
                    h.count.to_string(),
                    fmt_seconds(h.sum),
                    format!("{:.1}%", 100.0 * h.sum / total.max(1e-30)),
                    fmt_seconds(h.p50),
                    fmt_seconds(h.p99),
                ]
            })
            .collect();
        print_table(
            "Phase-time breakdown (final snapshot)",
            &["phase", "calls", "total", "share", "p50", "p99"],
            &rows,
        );
    }

    let drift = report::model_drift(&lines);
    if !drift.is_empty() {
        // At most 12 evenly spaced retrain points to keep the table short.
        let step = drift.len().div_ceil(12);
        let rows: Vec<Vec<String>> = drift
            .iter()
            .step_by(step)
            .map(|p| {
                vec![
                    p.seq.to_string(),
                    p.task.clone(),
                    p.pairs.to_string(),
                    format!("{:.3}", p.ranking_loss),
                    format!("{:.3}", p.rank_corr),
                ]
            })
            .collect();
        print_table(
            "Cost-model accuracy drift (retrains over time)",
            &["seq", "task", "pairs", "ranking loss", "rank corr"],
            &rows,
        );
    }

    let alloc = report::allocations(&lines);
    if !alloc.is_empty() {
        let total: u64 = alloc.values().sum();
        let rows: Vec<Vec<String>> = alloc
            .iter()
            .map(|(task, n)| {
                vec![
                    task.clone(),
                    n.to_string(),
                    format!("{:.1}%", 100.0 * *n as f64 / total.max(1) as f64),
                ]
            })
            .collect();
        print_table(
            "Task-scheduler allocations",
            &["task", "rounds", "share"],
            &rows,
        );
    }

    let counters = report::final_counters(&lines);
    if !counters.is_empty() {
        // Signature-cache effectiveness: hit/miss counter pairs from the
        // final snapshot (features/cache_*, model/score_cache_*).
        let pairs: [(&str, &str, &str); 2] = [
            (
                "feature extraction",
                "features/cache_hit",
                "features/cache_miss",
            ),
            (
                "model scoring",
                "model/score_cache_hits",
                "model/score_cache_misses",
            ),
        ];
        let rows: Vec<Vec<String>> = pairs
            .iter()
            .filter_map(|(label, hk, mk)| {
                let (h, m) = (
                    *counters.get(*hk).unwrap_or(&0),
                    *counters.get(*mk).unwrap_or(&0),
                );
                (h + m > 0).then(|| {
                    vec![
                        label.to_string(),
                        h.to_string(),
                        m.to_string(),
                        format!("{:.1}%", 100.0 * h as f64 / (h + m) as f64),
                    ]
                })
            })
            .collect();
        if !rows.is_empty() {
            print_table(
                "Signature-cache effectiveness",
                &["cache", "hits", "misses", "hit rate"],
                &rows,
            );
        }
        if let Some(n) = counters.get("features/extract_failed") {
            println!("feature extraction failures recorded: {n}");
        }
    }

    let kinds = report::error_kinds(&lines);
    if !kinds.is_empty() {
        print_table(
            "Measurement failures by kind",
            &["kind", "count"],
            &kinds
                .iter()
                .map(|(k, v)| vec![k.clone(), v.to_string()])
                .collect::<Vec<_>>(),
        );
    }
}

/// A coarse text sparkline of the best-latency curve: lower is better, so
/// the curve should descend left to right.
fn sparkline(pts: &[(u64, f64)]) -> String {
    const GLYPHS: [char; 5] = ['▁', '▂', '▄', '▆', '█'];
    let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let hi = pts.iter().map(|p| p.1).fold(0.0f64, f64::max);
    if !(lo.is_finite() && hi.is_finite()) || pts.is_empty() {
        return String::new();
    }
    let span = (hi - lo).max(1e-30);
    // Sample at most 24 points.
    let step = pts.len().div_ceil(24);
    pts.iter()
        .step_by(step)
        .map(|(_, b)| {
            let idx = (((b - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)]
        })
        .collect()
}
