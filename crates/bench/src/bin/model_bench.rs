//! Cost-model data-path microbenchmark: feature extraction (cold vs
//! signature-cached), GBDT training (exact sort-based vs histogram-binned
//! splits), and batch prediction over the packed feature matrix.
//!
//! Emits `BENCH_cost_model.json` (via `--json`) with wall-clock medians and
//! the exact-vs-histogram train+predict speedup. The committed baseline in
//! `results/` pins that *ratio* — a machine-independent number — and
//! `--check <baseline.json>` exits non-zero when the current ratio regresses
//! by more than 25%, which is the CI gate for the histogram path.
//!
//! Run: `cargo run -p ansor-bench --release --bin model-bench -- \
//!        --json BENCH_cost_model.json`
//! Gate: `... --bin model-bench -- --check results/BENCH_cost_model.json`
//!
//! `--trajectory <path> [--trajectory-key <key>]` additionally upserts the
//! measured ratio into a cross-PR trajectory file
//! (`results/BENCH_trajectory.json`), so the history of the gated number is
//! visible in one place instead of only the latest baseline.

use ansor_bench::{maybe_dump_json, maybe_record_trajectory, print_table, time_ms, Args};
use ansor_core::{generate_sketches, sample_program, AnnotationConfig, SearchTask};
use ansor_features::{extract_state_matrix, FeatureMatrix, FEATURE_DIM};
use ansor_runtime::SigCache;
use gbdt::{Gbdt, GbdtParams, Matrix, SplitStrategy, TreeParams};
use hwsim::HardwareTarget;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tensor_ir::{ComputeDag, DagBuilder, Expr, Reducer, State};

#[derive(Serialize, Deserialize)]
struct BenchReport {
    /// Synthetic training-set shape.
    n_rows: usize,
    n_cols: usize,
    /// Feature extraction over sampled real schedules, ms per batch.
    extract_cold_ms: f64,
    extract_cached_ms: f64,
    /// GBDT training over the synthetic set, ms per pass.
    train_exact_ms: f64,
    train_hist_ms: f64,
    /// Batch prediction over every row, ms per pass.
    predict_exact_ms: f64,
    predict_hist_ms: f64,
    /// (train+predict) exact / (train+predict) histogram — the gated ratio.
    train_predict_speedup: f64,
}

/// Synthetic feature matrix in the cost model's training regime: many
/// distinct values per column (so the histogram path actually quantizes)
/// with GBDT-friendly structure in the targets.
fn synthetic(n_rows: usize) -> (FeatureMatrix, Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(0xC057);
    let mut m = FeatureMatrix::new(FEATURE_DIM);
    let mut y = Vec::with_capacity(n_rows);
    let mut row = vec![0.0f32; FEATURE_DIM];
    for _ in 0..n_rows {
        for v in row.iter_mut() {
            *v = (rng.gen::<f32>() * 24.0).exp2().log2();
        }
        y.push(row[3] * 0.5 - row[17] * 0.25 + row[90] * 0.125 + rng.gen::<f32>());
        m.push_packed_segment(&row);
    }
    let w = vec![1.0f32; n_rows];
    (m, y, w)
}

fn matmul128() -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[128, 128]);
    let w = b.constant("B", &[128, 128]);
    b.compute_reduce("C", &[128, 128], &[128], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    Arc::new(b.build().unwrap())
}

fn sample_states(task: &SearchTask, n: usize) -> Vec<State> {
    let sketches = generate_sketches(task);
    let cfg = AnnotationConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    while out.len() < n {
        let sk = &sketches[rng.gen_range(0..sketches.len())];
        if let Some(s) = sample_program(sk, task, &cfg, &mut rng) {
            out.push(s);
        }
    }
    out
}

fn gbdt_params(split: SplitStrategy) -> GbdtParams {
    // The learned cost model's production parameters, with the split
    // strategy pinned instead of adaptive.
    GbdtParams {
        n_trees: 25,
        learning_rate: 0.25,
        colsample: 0.4,
        split,
        tree: TreeParams {
            max_depth: 6,
            min_child_weight: 1e-4,
            min_gain: 1e-12,
            feature_subset: vec![],
        },
        ..Default::default()
    }
}

fn main() {
    let args = Args::parse();
    let reps = args.pick(3, 5, 9);
    let n_rows = args.pick(2000, 8000, 32000);
    let n_states = args.pick(64, 256, 1024);

    // Feature extraction: cold (every state lowered + featurized) vs
    // through the signature cache (the predict→update reuse path).
    let task = SearchTask::new("GMM:bench", matmul128(), HardwareTarget::intel_20core());
    let states = sample_states(&task, n_states);
    let extract_cold_ms = time_ms(reps, || {
        states
            .iter()
            .map(|s| extract_state_matrix(s).map(|m| m.n_rows()).unwrap_or(0))
            .sum::<usize>()
    });
    let cache: SigCache<Arc<Result<FeatureMatrix, String>>> = SigCache::new(1 << 14);
    for s in &states {
        cache.get_or_insert_with(s.signature(), || Arc::new(extract_state_matrix(s)));
    }
    let extract_cached_ms = time_ms(reps, || {
        states
            .iter()
            .map(|s| {
                cache
                    .get_or_insert_with(s.signature(), || Arc::new(extract_state_matrix(s)))
                    .as_ref()
                    .as_ref()
                    .map(|m| m.n_rows())
                    .unwrap_or(0)
            })
            .sum::<usize>()
    });

    // Training + prediction over the synthetic set, exact vs histogram.
    let (m, y, w) = synthetic(n_rows);
    let x = Matrix::new(m.data(), m.n_cols());
    let tel = telemetry::Telemetry::disabled();
    let exact_params = gbdt_params(SplitStrategy::Exact);
    let hist_params = gbdt_params(SplitStrategy::Histogram);
    let train_exact_ms = time_ms(reps, || Gbdt::train_matrix(x, &y, &w, &exact_params, &tel));
    let train_hist_ms = time_ms(reps, || Gbdt::train_matrix(x, &y, &w, &hist_params, &tel));
    let exact_model = Gbdt::train_matrix(x, &y, &w, &exact_params, &tel);
    let hist_model = Gbdt::train_matrix(x, &y, &w, &hist_params, &tel);
    let predict_exact_ms = time_ms(reps, || exact_model.predict_matrix(x));
    let predict_hist_ms = time_ms(reps, || hist_model.predict_matrix(x));

    let report = BenchReport {
        n_rows,
        n_cols: FEATURE_DIM,
        extract_cold_ms,
        extract_cached_ms,
        train_exact_ms,
        train_hist_ms,
        predict_exact_ms,
        predict_hist_ms,
        train_predict_speedup: (train_exact_ms + predict_exact_ms)
            / (train_hist_ms + predict_hist_ms),
    };

    if args.tables_enabled() {
        print_table(
            &format!("Cost-model data path ({n_rows}x{} rows)", FEATURE_DIM),
            &["stage", "exact/cold (ms)", "hist/cached (ms)", "speedup"],
            &[
                vec![
                    "feature extraction".into(),
                    format!("{extract_cold_ms:.2}"),
                    format!("{extract_cached_ms:.2}"),
                    format!("{:.1}x", extract_cold_ms / extract_cached_ms.max(1e-9)),
                ],
                vec![
                    "gbdt train".into(),
                    format!("{train_exact_ms:.2}"),
                    format!("{train_hist_ms:.2}"),
                    format!("{:.1}x", train_exact_ms / train_hist_ms.max(1e-9)),
                ],
                vec![
                    "predict batch".into(),
                    format!("{predict_exact_ms:.2}"),
                    format!("{predict_hist_ms:.2}"),
                    format!("{:.1}x", predict_exact_ms / predict_hist_ms.max(1e-9)),
                ],
                vec![
                    "train+predict".into(),
                    format!("{:.2}", train_exact_ms + predict_exact_ms),
                    format!("{:.2}", train_hist_ms + predict_hist_ms),
                    format!("{:.2}x", report.train_predict_speedup),
                ],
            ],
        );
    }
    maybe_dump_json(&args, &report);

    // Cross-PR trajectory: append/refresh this run's gated ratio.
    maybe_record_trajectory(
        &args,
        "model-bench",
        "train_predict_speedup",
        report.train_predict_speedup,
    );

    // Regression gate: the speedup *ratio* is machine-independent, so CI
    // compares against the committed baseline with a 25% allowance.
    if let Some(i) = args.flags.iter().position(|f| f == "--check") {
        let path = args.flags.get(i + 1).unwrap_or_else(|| {
            eprintln!("--check requires a baseline path");
            std::process::exit(2);
        });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("--check: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let baseline: BenchReport = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("--check: cannot parse {path}: {e}");
            std::process::exit(2);
        });
        let floor = baseline.train_predict_speedup * 0.75;
        println!(
            "train+predict speedup {:.2}x vs baseline {:.2}x (floor {floor:.2}x)",
            report.train_predict_speedup, baseline.train_predict_speedup
        );
        if report.train_predict_speedup < floor {
            eprintln!("REGRESSION: histogram train+predict speedup fell >25% below baseline");
            std::process::exit(1);
        }
    }
}
