//! Serve-aware reporting: per-job lifecycle tables and fleet-wide
//! rule/operator efficacy, built from an `ansor-serve` job journal
//! (docs/SERVING.md) and the per-job traces it points at.
//!
//! The journal records every job's submit → start → round → finish path
//! (or its interruption by a daemon crash); each `Finish` event may name
//! the job's provenance trace. This module folds both into one
//! [`ServeReport`] that `trace-report --serve` renders and serializes.

use std::collections::BTreeMap;
use std::path::Path;

use ansor_serve::journal::{read_journal, JournalEvent};
use serde::Serialize;
use telemetry::report::{self, Efficacy};

/// One job's lifecycle, folded from its journal events (submit order).
#[derive(Debug, Clone, Default, Serialize)]
pub struct JobRow {
    /// Job id (`job-N`).
    pub job: String,
    /// Task name, e.g. `GMM:s0b1`.
    pub task: String,
    /// `queued`, `running`, `done`, `failed`, `cancelled`, or
    /// `interrupted` (submitted but never finished before a daemon
    /// restart).
    pub outcome: String,
    /// Trials completed (the submitted budget until progress arrives).
    pub trials: u64,
    /// Milliseconds queued before a worker claimed the job (`None` if it
    /// never started).
    pub queue_wait_ms: Option<f64>,
    /// Wall time from claim to finish (`None` until finished).
    pub wall_ms: Option<f64>,
    /// Best throughput the job reached (`None` when nothing measured).
    pub best_gflops: Option<f64>,
    /// Warm-store records this job contributed on completion.
    pub absorbed_records: u64,
    /// Per-job trace file, as the daemon recorded it.
    pub trace: Option<String>,
}

/// Everything `trace-report --serve` prints, as one serializable document.
#[derive(Debug, Default, Serialize)]
pub struct ServeReport {
    /// Journal path the report was built from.
    pub journal: String,
    /// Journal events parsed.
    pub events: usize,
    /// Malformed/torn journal lines skipped while reading.
    pub corrupt_lines_skipped: usize,
    /// Daemon boots recorded in this journal (restarts included).
    pub daemon_starts: u64,
    /// Jobs in submit order.
    pub jobs: Vec<JobRow>,
    /// Sketch-rule efficacy aggregated across every readable job trace.
    pub rule_efficacy: BTreeMap<String, Efficacy>,
    /// Evolution-operator efficacy aggregated across every readable job
    /// trace.
    pub operator_efficacy: BTreeMap<String, Efficacy>,
    /// Job traces successfully read for the fleet aggregation.
    pub traces_read: usize,
    /// Traces the journal named but which could not be read (rotated or
    /// deleted trace dir).
    pub traces_missing: usize,
}

/// Resolves a journaled trace reference to a readable path. The daemon
/// records the path it wrote (`--trace-dir` joined with the file name),
/// which may be absolute or relative to the daemon's working directory —
/// not necessarily to the journal's. Try the reference as recorded, then
/// relative to the journal's directory, then its bare file name next to
/// the journal (covers a journal+traces directory moved as a unit).
fn resolve_trace(trace_base: &Path, name: &str) -> std::path::PathBuf {
    let as_recorded = Path::new(name);
    if as_recorded.is_file() {
        return as_recorded.to_path_buf();
    }
    let relative = trace_base.join(name);
    if relative.is_file() {
        return relative;
    }
    match as_recorded.file_name() {
        Some(base) => trace_base.join(base),
        None => relative,
    }
}

fn merge_efficacy(dst: &mut BTreeMap<String, Efficacy>, src: BTreeMap<String, Efficacy>) {
    for (name, e) in src {
        let d = dst.entry(name).or_default();
        d.proposed += e.proposed;
        d.survived += e.survived;
        d.measured += e.measured;
        d.new_best += e.new_best;
    }
}

impl ServeReport {
    /// Reads the journal at `path` and folds it (plus any reachable
    /// per-job traces) into a report. Fails only when the journal itself
    /// is unreadable; missing traces are counted, not fatal.
    pub fn build(path: &Path) -> std::io::Result<ServeReport> {
        let (events, skipped) = read_journal(path)?;
        let trace_base = path.parent().unwrap_or(Path::new("."));
        let mut report = ServeReport {
            journal: path.display().to_string(),
            events: events.len(),
            corrupt_lines_skipped: skipped,
            ..ServeReport::default()
        };
        let mut index: BTreeMap<String, usize> = BTreeMap::new();
        for event in &events {
            match event {
                JournalEvent::DaemonStart { .. } => report.daemon_starts += 1,
                JournalEvent::Submit {
                    job, task, trials, ..
                } => {
                    index.insert(job.clone(), report.jobs.len());
                    report.jobs.push(JobRow {
                        job: job.clone(),
                        task: task.clone(),
                        outcome: "queued".into(),
                        trials: *trials,
                        ..JobRow::default()
                    });
                }
                JournalEvent::Start { job, queue_wait_ms } => {
                    if let Some(&i) = index.get(job) {
                        report.jobs[i].outcome = "running".into();
                        report.jobs[i].queue_wait_ms = Some(*queue_wait_ms);
                    }
                }
                JournalEvent::Round { job, trials, .. } => {
                    if let Some(&i) = index.get(job) {
                        report.jobs[i].trials = *trials;
                    }
                }
                JournalEvent::Finish {
                    job,
                    outcome,
                    queue_wait_ms,
                    wall_ms,
                    trials,
                    best_gflops,
                    absorbed_records,
                    trace,
                    ..
                } => {
                    if let Some(&i) = index.get(job) {
                        let row = &mut report.jobs[i];
                        row.outcome = outcome.clone();
                        row.queue_wait_ms = Some(*queue_wait_ms);
                        row.wall_ms = Some(*wall_ms);
                        row.trials = *trials;
                        row.best_gflops = *best_gflops;
                        row.absorbed_records = *absorbed_records;
                        row.trace = trace.clone();
                    }
                    if let Some(name) = trace {
                        match telemetry::read_trace_file(&resolve_trace(trace_base, name)) {
                            Ok((lines, _)) => {
                                report.traces_read += 1;
                                merge_efficacy(
                                    &mut report.rule_efficacy,
                                    report::rule_efficacy(&lines),
                                );
                                merge_efficacy(
                                    &mut report.operator_efficacy,
                                    report::operator_efficacy(&lines),
                                );
                            }
                            Err(_) => report.traces_missing += 1,
                        }
                    }
                }
                JournalEvent::Interrupted { job } => {
                    if let Some(&i) = index.get(job) {
                        report.jobs[i].outcome = "interrupted".into();
                    }
                }
            }
        }
        Ok(report)
    }
}

/// Table rows for the per-job section of `trace-report --serve`.
pub fn job_rows(report: &ServeReport) -> Vec<Vec<String>> {
    report
        .jobs
        .iter()
        .map(|j| {
            let fmt_ms = |v: Option<f64>| {
                v.map(|ms| format!("{ms:.1} ms"))
                    .unwrap_or_else(|| "-".into())
            };
            vec![
                j.job.clone(),
                j.task.clone(),
                j.outcome.clone(),
                j.trials.to_string(),
                fmt_ms(j.queue_wait_ms),
                fmt_ms(j.wall_ms),
                j.best_gflops
                    .map(|g| format!("{g:.1}"))
                    .unwrap_or_else(|| "-".into()),
                j.absorbed_records.to_string(),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use telemetry::{EfficacyRow, TraceEvent};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ansor-serve-report-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_journal(path: &Path, events: &[JournalEvent]) {
        let mut f = std::fs::File::create(path).unwrap();
        for e in events {
            writeln!(f, "{}", serde_json::to_string(e).unwrap()).unwrap();
        }
    }

    fn write_trace(path: &Path, rows: &[(u64, u64, u64, u64)]) {
        let tel = telemetry::Telemetry::to_file(path).unwrap();
        tel.emit(|| TraceEvent::OperatorStats {
            task: "GMM:s0b1".into(),
            round: 0,
            operators: rows
                .iter()
                .map(|&(p, s, m, n)| EfficacyRow {
                    name: "mutate-tile".into(),
                    proposed: p,
                    survived: s,
                    measured: m,
                    new_best: n,
                })
                .collect(),
            rules: vec![EfficacyRow {
                name: "multi-level-tiling".into(),
                proposed: 8,
                survived: 4,
                measured: 2,
                new_best: 1,
            }],
        });
        tel.flush();
    }

    #[test]
    fn folds_journal_into_per_job_rows_and_fleet_efficacy() {
        let dir = temp_dir("fold");
        write_trace(&dir.join("job-1.trace.jsonl"), &[(10, 5, 3, 1)]);
        write_trace(&dir.join("job-2.trace.jsonl"), &[(20, 8, 4, 2)]);
        let journal = dir.join("journal.jsonl");
        let submit = |job: &str, seed: u64| JournalEvent::Submit {
            job: job.into(),
            task: "GMM:s0b1".into(),
            op: "GMM".into(),
            shape: 0,
            batch: 1,
            target: "intel".into(),
            trials: 64,
            seed,
        };
        write_journal(
            &journal,
            &[
                JournalEvent::DaemonStart {
                    workers: 2,
                    queue_cap: 8,
                },
                submit("job-1", 1),
                submit("job-2", 2),
                submit("job-3", 3),
                JournalEvent::Start {
                    job: "job-1".into(),
                    queue_wait_ms: 0.4,
                },
                JournalEvent::Start {
                    job: "job-2".into(),
                    queue_wait_ms: 1.2,
                },
                JournalEvent::Round {
                    job: "job-1".into(),
                    round: 1,
                    trials: 64,
                    best_seconds: Some(2e-4),
                },
                JournalEvent::Finish {
                    job: "job-1".into(),
                    outcome: "done".into(),
                    queue_wait_ms: 0.4,
                    wall_ms: 350.0,
                    trials: 64,
                    best_gflops: Some(81.5),
                    cache: Default::default(),
                    absorbed_records: 64,
                    trace: Some("job-1.trace.jsonl".into()),
                },
                JournalEvent::Finish {
                    job: "job-2".into(),
                    outcome: "done".into(),
                    queue_wait_ms: 1.2,
                    wall_ms: 340.0,
                    trials: 64,
                    best_gflops: Some(79.0),
                    cache: Default::default(),
                    absorbed_records: 12,
                    trace: Some("job-2.trace.jsonl".into()),
                },
                JournalEvent::Interrupted {
                    job: "job-3".into(),
                },
            ],
        );

        let report = ServeReport::build(&journal).unwrap();
        assert_eq!(report.daemon_starts, 1);
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.jobs[0].outcome, "done");
        assert_eq!(report.jobs[0].queue_wait_ms, Some(0.4));
        assert_eq!(report.jobs[0].best_gflops, Some(81.5));
        assert_eq!(report.jobs[0].absorbed_records, 64);
        assert_eq!(report.jobs[2].outcome, "interrupted");
        assert_eq!(report.traces_read, 2);
        assert_eq!(report.traces_missing, 0);
        // Fleet aggregation sums both jobs' funnels.
        let op = &report.operator_efficacy["mutate-tile"];
        assert_eq!((op.proposed, op.new_best), (30, 3));
        let rule = &report.rule_efficacy["multi-level-tiling"];
        assert_eq!((rule.proposed, rule.new_best), (16, 2));
        assert_eq!(job_rows(&report).len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_traces_are_counted_not_fatal() {
        let dir = temp_dir("missing");
        let journal = dir.join("journal.jsonl");
        write_journal(
            &journal,
            &[
                JournalEvent::Submit {
                    job: "job-1".into(),
                    task: "GMM:s0b1".into(),
                    op: "GMM".into(),
                    shape: 0,
                    batch: 1,
                    target: "intel".into(),
                    trials: 64,
                    seed: 1,
                },
                JournalEvent::Finish {
                    job: "job-1".into(),
                    outcome: "done".into(),
                    queue_wait_ms: 0.1,
                    wall_ms: 100.0,
                    trials: 64,
                    best_gflops: None,
                    cache: Default::default(),
                    absorbed_records: 0,
                    trace: Some("gone.trace.jsonl".into()),
                },
            ],
        );
        let report = ServeReport::build(&journal).unwrap();
        assert_eq!(report.traces_missing, 1);
        assert_eq!(report.traces_read, 0);
        assert!(report.operator_efficacy.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
