//! Wire-protocol conformance: property-based round-trips of the message
//! types, and live-socket rejection tests (malformed JSON, unknown
//! methods, oversized lines, mid-write disconnects).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use ansor_serve::proto::{
    decode_request, decode_response, encode, CacheDeltas, JobCounters, JobResult, JobSpec,
    JobStatus, Request, Response, ServerStats, TraceChunk, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use ansor_serve::{ServeConfig, Server};
use proptest::prelude::*;

fn arb_job_id() -> impl Strategy<Value = String> {
    any::<u32>().prop_map(|n| format!("job-{}", n % 1_000_000))
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        any::<u32>().prop_map(|n| format!("OP{}", n % 1000)),
        0usize..8,
        1i64..32,
        prop_oneof![
            Just("intel".to_string()),
            Just("arm".to_string()),
            Just("gpu".to_string())
        ],
        1usize..4096,
        any::<u64>(),
        prop_oneof![Just(None), Just(Some(false)), Just(Some(true))],
        (
            prop_oneof![Just(None), (0usize..16).prop_map(Some)],
            prop_oneof![
                Just(None),
                Just(Some("none".to_string())),
                Just(Some("transient_prob=0.1".to_string()))
            ],
            prop_oneof![Just(None), (0.05f64..1.0).prop_map(Some)],
            prop_oneof![Just(None), Just(Some(false)), Just(Some(true))],
        ),
    )
        .prop_map(
            |(op, shape, batch, target, trials, seed, warm_start, (threads, faults, keep, tr))| {
                JobSpec {
                    op,
                    shape,
                    batch,
                    target,
                    trials,
                    seed,
                    warm_start,
                    threads,
                    faults,
                    prerank_keep: keep,
                    transfer: tr,
                }
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        prop_oneof![
            Just("submit".to_string()),
            Just("status".to_string()),
            Just("result".to_string()),
            Just("wait".to_string()),
            Just("cancel".to_string()),
            Just("trace".to_string()),
            Just("stats".to_string()),
            Just("shutdown".to_string())
        ],
        prop_oneof![Just(None), arb_job_id().prop_map(Some)],
        prop_oneof![Just(None), arb_spec().prop_map(Some)],
        prop_oneof![Just(None), any::<bool>().prop_map(Some)],
        prop_oneof![Just(None), any::<u32>().prop_map(|n| Some(n as u64))],
    )
        .prop_map(|(id, method, job, spec, drain, offset)| Request {
            id,
            method,
            job,
            spec,
            drain,
            offset,
        })
}

fn arb_deltas() -> impl Strategy<Value = CacheDeltas> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(a, b, c, d, e, f)| CacheDeltas {
            measure_hits: a as u64,
            measure_misses: b as u64,
            feature_hits: c as u64,
            feature_misses: d as u64,
            score_hits: e as u64,
            score_misses: f as u64,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    let status = (
        arb_job_id(),
        prop_oneof![
            Just("queued".to_string()),
            Just("running".to_string()),
            Just("done".to_string())
        ],
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        prop_oneof![Just(None), (1e-6f64..1e3).prop_map(Some)],
    )
        .prop_map(|(job, state, rounds, trials, budget, best)| JobStatus {
            job,
            state,
            rounds: rounds as u64,
            trials: trials as u64,
            trials_budget: budget as u64,
            best_seconds: best,
        });
    let result = (
        arb_job_id(),
        any::<u32>(),
        prop_oneof![Just(None), (1e-6f64..1e3).prop_map(Some)],
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        any::<u64>(),
        arb_deltas(),
        0.0f64..1e6,
    )
        .prop_map(|(job, trials, best, sig, fp, warm, wall_ms)| JobResult {
            job,
            task: "GMM:s0b1".into(),
            state: "done".into(),
            trials: trials as u64,
            best_seconds: best,
            best_gflops: best.map(|s| 1.0 / s),
            best_signature: sig,
            log_records: trials as u64,
            log_fingerprint: fp,
            warm,
            wall_ms,
            queue_wait_ms: wall_ms / 2.0,
            counters: JobCounters {
                trials_valid: trials as u64,
                measure_cache_hits: fp % 97,
                phase_seconds: [("evolution".to_string(), wall_ms / 1e3)].into(),
                ..JobCounters::default()
            },
            error: None,
        });
    let stats = (any::<u32>(), any::<u32>(), any::<u32>(), any::<bool>()).prop_map(
        |(submitted, done, queued, draining)| ServerStats {
            protocol_version: PROTOCOL_VERSION,
            jobs_submitted: submitted as u64,
            jobs_queued: queued as u64,
            jobs_active: 0,
            jobs_done: done as u64,
            jobs_failed: 0,
            jobs_cancelled: 0,
            queue_cap: 64,
            workers: 2,
            store_entries: 1,
            store_records: 17,
            store_bytes: 4096,
            store_evictions: 0,
            surrogate_updates: 17,
            draining,
            trials_total: done as u64 * 64,
        },
    );
    let trace =
        (arb_job_id(), any::<u32>(), any::<bool>()).prop_map(|(job, offset, eof)| TraceChunk {
            job,
            offset: offset as u64,
            data: "{\"seq\":0,\"t_ms\":0.1,\"event\":{\"RoundStart\":{}}}\n".into(),
            eof,
        });
    (
        prop_oneof![Just(None), any::<u64>().prop_map(Some)],
        any::<bool>(),
        prop_oneof![
            Just(None),
            any::<u64>().prop_map(|n| Some(format!("error {n}")))
        ],
        prop_oneof![Just(None), arb_job_id().prop_map(Some)],
        prop_oneof![Just(None), status.prop_map(Some)],
        prop_oneof![Just(None), result.prop_map(Some)],
        prop_oneof![Just(None), stats.prop_map(Some)],
        prop_oneof![Just(None), trace.prop_map(Some)],
    )
        .prop_map(
            |(id, ok, error, job, status, result, stats, trace)| Response {
                id,
                ok,
                error,
                job,
                status,
                result,
                stats,
                trace,
            },
        )
}

proptest! {
    #[test]
    fn requests_round_trip(req in arb_request()) {
        let line = encode(&req);
        prop_assert!(line.len() < MAX_LINE_BYTES);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(resp in arb_response()) {
        let line = encode(&resp);
        prop_assert!(line.len() < MAX_LINE_BYTES);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(decode_response(&line).unwrap(), resp);
    }

    #[test]
    fn garbage_never_decodes_to_a_request(n in any::<u64>()) {
        // Anything that isn't a JSON object is an error, never a panic.
        let garbage = format!("garbage {n} not json");
        prop_assert!(decode_request(&garbage).is_err());
        prop_assert!(decode_request("").is_err());
        prop_assert!(decode_request("[1,2,3]").is_err());
    }
}

/// Boots a throwaway in-memory server on an ephemeral port.
fn test_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 4,
        ..Default::default()
    })
    .expect("server starts")
}

fn raw_conn(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let writer = stream.try_clone().expect("clone");
    (BufReader::new(stream), writer)
}

fn send_raw(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> Response {
    writer.write_all(line.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send");
    writer.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("recv");
    decode_response(resp.trim_end()).expect("response parses")
}

#[test]
fn malformed_json_gets_an_error_response() {
    let server = test_server();
    let (mut r, mut w) = raw_conn(&server);
    let resp = send_raw(&mut r, &mut w, "{this is not json");
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("malformed"), "wrong error");
    // The connection survives and still serves well-formed requests,
    // recovering the id of a parseable-but-invalid request.
    let resp = send_raw(&mut r, &mut w, "{\"id\": 42, \"method\": 7}");
    assert!(!resp.ok);
    assert_eq!(resp.id, Some(42));
    server.shutdown(true);
    server.wait();
}

#[test]
fn unknown_methods_are_rejected() {
    let server = test_server();
    let (mut r, mut w) = raw_conn(&server);
    let resp = send_raw(&mut r, &mut w, "{\"id\": 5, \"method\": \"explode\"}");
    assert!(!resp.ok);
    assert_eq!(resp.id, Some(5));
    assert!(resp.error.unwrap().contains("unknown method"));
    server.shutdown(true);
    server.wait();
}

#[test]
fn oversized_lines_are_rejected_and_the_connection_closed() {
    let server = test_server();
    let (mut r, mut w) = raw_conn(&server);
    let mut big = String::with_capacity(MAX_LINE_BYTES + 64);
    big.push_str("{\"id\":1,\"method\":\"stats\",\"pad\":\"");
    while big.len() <= MAX_LINE_BYTES {
        big.push('x');
    }
    big.push_str("\"}");
    let resp = send_raw(&mut r, &mut w, &big);
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("exceeds"), "wrong error");
    // Server hangs up after an unframeable line.
    let mut rest = String::new();
    assert_eq!(r.read_line(&mut rest).expect("read"), 0);
    server.shutdown(true);
    server.wait();
}

#[test]
fn mid_write_disconnect_is_ignored() {
    let server = test_server();
    {
        let (_r, mut w) = raw_conn(&server);
        // Half a request, no newline, then drop the socket.
        w.write_all(b"{\"id\":9,\"method\":\"sub").expect("send");
        w.flush().expect("flush");
    }
    // The server must neither crash nor treat the fragment as a request.
    let mut client = ansor_serve::Client::connect(&server.local_addr().to_string()).unwrap();
    let stats = client.stats().expect("server still healthy");
    assert_eq!(stats.jobs_submitted, 0);
    server.shutdown(true);
    server.wait();
}

#[test]
fn blank_lines_are_skipped() {
    let server = test_server();
    let (mut r, mut w) = raw_conn(&server);
    w.write_all(b"\n\r\n").expect("send");
    let resp = send_raw(&mut r, &mut w, "{\"id\": 1, \"method\": \"stats\"}");
    assert!(resp.ok);
    assert_eq!(resp.id, Some(1));
    server.shutdown(true);
    server.wait();
}
