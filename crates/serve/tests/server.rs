//! End-to-end daemon behavior: job lifecycle, warm-store reuse across
//! jobs and restarts, cancellation, queue bounds, graceful drain, per-job
//! trace retrieval, and the job journal.

use ansor_serve::journal::{read_journal, JournalEvent};
use ansor_serve::{Client, JobSpec, ServeConfig, Server};

fn spec(seed: u64, trials: usize) -> JobSpec {
    JobSpec {
        op: "GMM".into(),
        shape: 0,
        batch: 1,
        target: "intel".into(),
        trials,
        seed,
        warm_start: None,
        threads: None,
        faults: None,
        prerank_keep: None,
        transfer: None,
    }
}

fn start(workers: usize, queue_cap: usize, store_path: Option<String>) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        store_path,
        ..Default::default()
    })
    .expect("server starts")
}

fn client(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string()).expect("connect")
}

#[test]
fn resubmitted_job_hits_the_warm_store() {
    let server = start(1, 8, None);
    let mut c = client(&server);

    let cold = c.submit(spec(42, 64)).expect("submit");
    let cold = c.wait(&cold).expect("wait");
    assert_eq!(cold.state, "done");
    assert!(cold.trials > 0);
    assert!(cold.best_seconds.is_some());

    // Identical spec again: the search replays the same trajectory, so
    // every measurement and featurization is already cached.
    let warm = c.submit(spec(42, 64)).expect("submit");
    let warm = c.wait(&warm).expect("wait");
    assert_eq!(warm.state, "done");
    assert!(
        warm.warm.measure_hits > 0,
        "no measure-cache hits on identical resubmit: {:?}",
        warm.warm
    );
    assert!(
        warm.warm.feature_hits > 0,
        "no feature-cache hits on identical resubmit: {:?}",
        warm.warm
    );
    // Bit-identical outcome.
    assert_eq!(warm.log_fingerprint, cold.log_fingerprint);
    assert_eq!(warm.best_signature, cold.best_signature);
    assert_eq!(
        warm.best_seconds.unwrap().to_bits(),
        cold.best_seconds.unwrap().to_bits()
    );

    // A different seed on the same workload class shares the caches too
    // (the class key excludes the seed) but follows its own trajectory.
    let other = c.submit(spec(7, 64)).expect("submit");
    let other = c.wait(&other).expect("wait");
    assert_eq!(other.state, "done");
    assert_ne!(other.log_fingerprint, cold.log_fingerprint);

    let stats = c.stats().expect("stats");
    assert_eq!(stats.jobs_done, 3);
    assert_eq!(stats.store_entries, 1);
    assert!(stats.store_records > 0);

    server.shutdown(true);
    server.wait();
}

#[test]
fn warm_store_survives_restart() {
    let dir = std::env::temp_dir().join(format!("ansor-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.json");
    let _ = std::fs::remove_file(&path);
    let path_str = path.to_string_lossy().to_string();

    let first = start(1, 8, Some(path_str.clone()));
    let mut c = client(&first);
    let cold = c.submit(spec(3, 64)).expect("submit");
    let cold = c.wait(&cold).expect("wait");
    assert_eq!(cold.state, "done");
    c.shutdown(true).expect("shutdown");
    first.wait();
    assert!(path.exists(), "store file not written");

    // A fresh process (new server) re-primes its caches from the store, so
    // the same job is warm from the first trial.
    let second = start(1, 8, Some(path_str));
    let mut c = client(&second);
    let warm = c.submit(spec(3, 64)).expect("submit");
    let warm = c.wait(&warm).expect("wait");
    assert_eq!(warm.state, "done");
    assert!(
        warm.warm.measure_hits > 0,
        "restart lost the warm store: {:?}",
        warm.warm
    );
    assert_eq!(warm.log_fingerprint, cold.log_fingerprint);
    second.shutdown(true);
    second.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn queued_jobs_can_be_cancelled() {
    // One worker: the first job occupies it, the rest queue behind.
    let server = start(1, 8, None);
    let mut c = client(&server);
    let running = c.submit(spec(1, 256)).expect("submit");
    let queued = c.submit(spec(2, 256)).expect("submit");
    c.cancel(&queued).expect("cancel");
    let cancelled = c.wait(&queued).expect("wait");
    assert_eq!(cancelled.state, "cancelled");
    assert_eq!(cancelled.trials, 0);
    // The running job is unaffected.
    let done = c.wait(&running).expect("wait");
    assert_eq!(done.state, "done");
    let stats = c.stats().expect("stats");
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_done, 1);
    server.shutdown(true);
    server.wait();
}

#[test]
fn queue_bound_is_enforced() {
    let server = start(1, 2, None);
    let mut c = client(&server);
    // Worker takes the first; capacity 2 admits two more into the queue.
    let mut ids = vec![c.submit(spec(1, 512)).expect("submit")];
    let mut rejected = 0;
    for seed in 2..8 {
        match c.submit(spec(seed, 512)) {
            Ok(id) => ids.push(id),
            Err(e) => {
                assert!(e.contains("queue full"), "unexpected error: {e}");
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "queue bound never triggered");
    for id in &ids {
        c.cancel(id).expect("cancel");
    }
    for id in &ids {
        c.wait(id).expect("wait");
    }
    server.shutdown(true);
    server.wait();
}

#[test]
fn invalid_specs_are_rejected_at_submit() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    let mut bad = spec(0, 64);
    bad.op = "NOPE".into();
    assert!(c.submit(bad).unwrap_err().contains("unknown case"));
    let mut bad = spec(0, 64);
    bad.target = "vax".into();
    assert!(c.submit(bad).unwrap_err().contains("unknown target"));
    let bad = spec(0, 0);
    assert!(c.submit(bad).unwrap_err().contains("trials"));
    let stats = c.stats().expect("stats");
    assert_eq!(stats.jobs_submitted, 0);
    server.shutdown(true);
    server.wait();
}

#[test]
fn graceful_shutdown_drains_the_queue() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    let a = c.submit(spec(1, 64)).expect("submit");
    let b = c.submit(spec(2, 64)).expect("submit");
    // Drain: both jobs must complete even though shutdown arrives first.
    let mut c2 = client(&server);
    c2.shutdown(true).expect("shutdown");
    let ra = c.wait(&a).expect("wait");
    let rb = c.wait(&b).expect("wait");
    assert_eq!(ra.state, "done");
    assert_eq!(rb.state, "done");
    // New submits are refused while draining (if the server is still up).
    if let Err(e) = c.submit(spec(3, 64)) {
        assert!(
            e.contains("draining") || e.contains("connection"),
            "unexpected error: {e}"
        );
    }
    server.wait();
}

#[test]
fn immediate_shutdown_cancels_everything() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    let a = c.submit(spec(1, 4096)).expect("submit");
    let b = c.submit(spec(2, 4096)).expect("submit");
    let mut c2 = client(&server);
    c2.shutdown(false).expect("shutdown");
    let ra = c.wait(&a).expect("wait");
    let rb = c.wait(&b).expect("wait");
    assert_eq!(rb.state, "cancelled");
    assert!(ra.state == "cancelled" || ra.state == "done");
    server.wait();
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ansor-serve-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trace_method_requires_a_trace_dir_and_a_finished_job() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    assert!(c.trace("job-404").unwrap_err().contains("no such job"));
    let id = c.submit(spec(5, 48)).expect("submit");
    c.wait(&id).expect("wait");
    // The daemon runs without --trace-dir: the error says so.
    let err = c.trace(&id).unwrap_err();
    assert!(err.contains("trace-dir"), "unexpected error: {err}");
    server.shutdown(true);
    server.wait();
}

#[test]
fn per_job_traces_are_retrievable_and_chunks_reassemble_exactly() {
    let dir = temp_dir("traces");
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        trace_dir: Some(dir.to_string_lossy().to_string()),
        ..Default::default()
    })
    .expect("server starts");
    let mut c = client(&server);
    let id = c.submit(spec(5, 48)).expect("submit");
    let result = c.wait(&id).expect("wait");
    assert_eq!(result.state, "done");

    // The pulled trace is byte-identical to the file the daemon wrote,
    // and parses as a well-formed event stream.
    let pulled = c.trace(&id).expect("trace");
    let on_disk = std::fs::read_to_string(dir.join(format!("{id}.trace.jsonl"))).unwrap();
    assert_eq!(pulled, on_disk);
    let (lines, skipped) = telemetry::read_trace(pulled.as_bytes()).expect("trace parses");
    assert_eq!(skipped, 0);
    assert!(
        lines.len() > result.trials as usize,
        "suspiciously short trace: {} lines for {} trials",
        lines.len(),
        result.trials
    );

    // The per-job counter summary reconciles with the session's own
    // numbers: every trial was measured (valid or failed) exactly once.
    let counters = &result.counters;
    assert_eq!(
        counters.trials_valid + counters.trials_failed,
        result.trials,
        "{counters:?}"
    );
    assert!(!counters.phase_seconds.is_empty(), "no phase breakdown");

    // Grow the trace past the chunk size: the client must reassemble the
    // multi-chunk read into the exact same bytes.
    let mut big = on_disk.clone();
    while big.len() < 600 * 1024 {
        big.push_str(&on_disk);
    }
    std::fs::write(dir.join(format!("{id}.trace.jsonl")), &big).unwrap();
    let pulled = c.trace(&id).expect("trace");
    assert_eq!(pulled, big, "chunked reassembly corrupted the trace");

    server.shutdown(true);
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_records_the_job_lifecycle() {
    let dir = temp_dir("journal");
    let journal_path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal_path);
    let tel = telemetry::Telemetry::with_metrics();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        journal_path: Some(journal_path.to_string_lossy().to_string()),
        telemetry: tel.clone(),
        ..Default::default()
    })
    .expect("server starts");
    let mut c = client(&server);
    let done_id = c.submit(spec(5, 48)).expect("submit");
    let result = c.wait(&done_id).expect("wait");
    assert_eq!(result.state, "done");
    assert!(result.queue_wait_ms >= 0.0);
    // Cancel a queued job too: it must land in the journal as cancelled.
    let running = c.submit(spec(1, 512)).expect("submit");
    let queued = c.submit(spec(2, 512)).expect("submit");
    c.cancel(&queued).expect("cancel");
    c.wait(&queued).expect("wait");
    // Only cancel the other job once it is genuinely running, so its
    // claim (and queue-wait observation) has definitely happened.
    while c.status(&running).expect("status").state == "queued" {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    c.cancel(&running).expect("cancel");
    c.wait(&running).expect("wait");

    // The daemon's own histograms saw the queue waits and the requests.
    let snap = tel.live_snapshot().expect("metrics enabled");
    assert!(snap.metrics.histograms["serve/queue_wait_ms"].count >= 2);
    assert!(snap.metrics.histograms["serve/request_ms/submit"].count >= 3);
    assert!(snap.metrics.histograms["serve/request_ms/wait"].count >= 3);

    server.shutdown(true);
    server.wait();

    let (events, skipped) = read_journal(&journal_path).expect("journal readable");
    assert_eq!(skipped, 0);
    assert!(matches!(events[0], JournalEvent::DaemonStart { .. }));
    let finishes: Vec<(&str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::Finish { job, outcome, .. } => Some((job.as_str(), outcome.as_str())),
            _ => None,
        })
        .collect();
    assert!(
        finishes.contains(&(done_id.as_str(), "done")),
        "{finishes:?}"
    );
    assert!(
        finishes.contains(&(queued.as_str(), "cancelled")),
        "{finishes:?}"
    );
    // The done job's journal entry reconciles with its wire result, and
    // its rounds showed up as progress events.
    let done_finish = events.iter().find_map(|e| match e {
        JournalEvent::Finish {
            job,
            trials,
            queue_wait_ms,
            absorbed_records,
            ..
        } if job == &done_id => Some((*trials, *queue_wait_ms, *absorbed_records)),
        _ => None,
    });
    let (trials, queue_wait_ms, absorbed) = done_finish.expect("done job journaled");
    assert_eq!(trials, result.trials);
    assert!(queue_wait_ms >= 0.0);
    assert!(absorbed > 0, "done job absorbed no records");
    assert!(
        events.iter().any(|e| matches!(
            e,
            JournalEvent::Round { job, .. } if job == &done_id
        )),
        "no round progress journaled"
    );
    // Started jobs carry a queue-wait on their Start event.
    assert!(events.iter().any(|e| matches!(
        e,
        JournalEvent::Start { job, queue_wait_ms } if job == &done_id && *queue_wait_ms >= 0.0
    )));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_replay_marks_interrupted_jobs_and_keeps_ids_unique() {
    let dir = temp_dir("journal-replay");
    let journal_path = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal_path);

    // Epoch 1: run one job to completion, then simulate a crash by
    // appending a Submit+Start with no Finish — exactly what a daemon
    // killed mid-job leaves behind.
    let boot = |first: bool| {
        Server::start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_cap: 8,
            journal_path: Some(journal_path.to_string_lossy().to_string()),
            ..Default::default()
        })
        .unwrap_or_else(|e| panic!("server starts (first={first}): {e}"))
    };
    let first = boot(true);
    let mut c = client(&first);
    let finished = c.submit(spec(5, 48)).expect("submit");
    c.wait(&finished).expect("wait");
    first.shutdown(true);
    first.wait();
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal_path)
            .unwrap();
        writeln!(
            f,
            "{}",
            serde_json::to_string(&JournalEvent::Submit {
                job: "job-9".into(),
                task: "GMM:s0b1".into(),
                op: "GMM".into(),
                shape: 0,
                batch: 1,
                target: "intel".into(),
                trials: 64,
                seed: 9,
            })
            .unwrap()
        )
        .unwrap();
        writeln!(
            f,
            "{}",
            serde_json::to_string(&JournalEvent::Start {
                job: "job-9".into(),
                queue_wait_ms: 0.3,
            })
            .unwrap()
        )
        .unwrap();
    }

    // Epoch 2: replay must mark job-9 interrupted (no phantom running
    // entry) and never reissue an id the journal has seen.
    let second = boot(false);
    let mut c = client(&second);
    let fresh = c.submit(spec(6, 48)).expect("submit");
    assert_ne!(fresh, "job-9", "restart reused a journaled job id");
    let fresh_n: u64 = fresh.strip_prefix("job-").unwrap().parse().unwrap();
    assert!(
        fresh_n > 9,
        "id counter not seeded past the journal: {fresh}"
    );
    c.wait(&fresh).expect("wait");
    second.shutdown(true);
    second.wait();

    let (events, skipped) = read_journal(&journal_path).expect("journal readable");
    assert_eq!(skipped, 0);
    assert!(
        events.iter().any(|e| matches!(
            e,
            JournalEvent::Interrupted { job } if job == "job-9"
        )),
        "interrupted job not marked"
    );
    // Interruption is terminal: across the whole journal every submitted
    // job reaches exactly one terminal event (Finish or Interrupted).
    let mut open: Vec<&str> = Vec::new();
    for e in &events {
        match e {
            JournalEvent::Submit { job, .. } => open.push(job),
            JournalEvent::Finish { job, .. } | JournalEvent::Interrupted { job } => {
                let before = open.len();
                open.retain(|j| j != job);
                assert_eq!(before, open.len() + 1, "unmatched terminal for {job}");
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "phantom running entries: {open:?}");
    // Queue-wait accounting from epoch 1 survives the restart.
    assert!(events.iter().any(|e| matches!(
        e,
        JournalEvent::Finish { job, queue_wait_ms, .. }
            if job == &finished && *queue_wait_ms >= 0.0
    )));
    let _ = std::fs::remove_dir_all(&dir);
}
