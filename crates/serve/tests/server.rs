//! End-to-end daemon behavior: job lifecycle, warm-store reuse across
//! jobs and restarts, cancellation, queue bounds, and graceful drain.

use ansor_serve::{Client, JobSpec, ServeConfig, Server};

fn spec(seed: u64, trials: usize) -> JobSpec {
    JobSpec {
        op: "GMM".into(),
        shape: 0,
        batch: 1,
        target: "intel".into(),
        trials,
        seed,
        warm_start: None,
        threads: None,
        faults: None,
        prerank_keep: None,
        transfer: None,
    }
}

fn start(workers: usize, queue_cap: usize, store_path: Option<String>) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        store_path,
        ..Default::default()
    })
    .expect("server starts")
}

fn client(server: &Server) -> Client {
    Client::connect(&server.local_addr().to_string()).expect("connect")
}

#[test]
fn resubmitted_job_hits_the_warm_store() {
    let server = start(1, 8, None);
    let mut c = client(&server);

    let cold = c.submit(spec(42, 64)).expect("submit");
    let cold = c.wait(&cold).expect("wait");
    assert_eq!(cold.state, "done");
    assert!(cold.trials > 0);
    assert!(cold.best_seconds.is_some());

    // Identical spec again: the search replays the same trajectory, so
    // every measurement and featurization is already cached.
    let warm = c.submit(spec(42, 64)).expect("submit");
    let warm = c.wait(&warm).expect("wait");
    assert_eq!(warm.state, "done");
    assert!(
        warm.warm.measure_hits > 0,
        "no measure-cache hits on identical resubmit: {:?}",
        warm.warm
    );
    assert!(
        warm.warm.feature_hits > 0,
        "no feature-cache hits on identical resubmit: {:?}",
        warm.warm
    );
    // Bit-identical outcome.
    assert_eq!(warm.log_fingerprint, cold.log_fingerprint);
    assert_eq!(warm.best_signature, cold.best_signature);
    assert_eq!(
        warm.best_seconds.unwrap().to_bits(),
        cold.best_seconds.unwrap().to_bits()
    );

    // A different seed on the same workload class shares the caches too
    // (the class key excludes the seed) but follows its own trajectory.
    let other = c.submit(spec(7, 64)).expect("submit");
    let other = c.wait(&other).expect("wait");
    assert_eq!(other.state, "done");
    assert_ne!(other.log_fingerprint, cold.log_fingerprint);

    let stats = c.stats().expect("stats");
    assert_eq!(stats.jobs_done, 3);
    assert_eq!(stats.store_entries, 1);
    assert!(stats.store_records > 0);

    server.shutdown(true);
    server.wait();
}

#[test]
fn warm_store_survives_restart() {
    let dir = std::env::temp_dir().join(format!("ansor-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.json");
    let _ = std::fs::remove_file(&path);
    let path_str = path.to_string_lossy().to_string();

    let first = start(1, 8, Some(path_str.clone()));
    let mut c = client(&first);
    let cold = c.submit(spec(3, 64)).expect("submit");
    let cold = c.wait(&cold).expect("wait");
    assert_eq!(cold.state, "done");
    c.shutdown(true).expect("shutdown");
    first.wait();
    assert!(path.exists(), "store file not written");

    // A fresh process (new server) re-primes its caches from the store, so
    // the same job is warm from the first trial.
    let second = start(1, 8, Some(path_str));
    let mut c = client(&second);
    let warm = c.submit(spec(3, 64)).expect("submit");
    let warm = c.wait(&warm).expect("wait");
    assert_eq!(warm.state, "done");
    assert!(
        warm.warm.measure_hits > 0,
        "restart lost the warm store: {:?}",
        warm.warm
    );
    assert_eq!(warm.log_fingerprint, cold.log_fingerprint);
    second.shutdown(true);
    second.wait();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn queued_jobs_can_be_cancelled() {
    // One worker: the first job occupies it, the rest queue behind.
    let server = start(1, 8, None);
    let mut c = client(&server);
    let running = c.submit(spec(1, 256)).expect("submit");
    let queued = c.submit(spec(2, 256)).expect("submit");
    c.cancel(&queued).expect("cancel");
    let cancelled = c.wait(&queued).expect("wait");
    assert_eq!(cancelled.state, "cancelled");
    assert_eq!(cancelled.trials, 0);
    // The running job is unaffected.
    let done = c.wait(&running).expect("wait");
    assert_eq!(done.state, "done");
    let stats = c.stats().expect("stats");
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_done, 1);
    server.shutdown(true);
    server.wait();
}

#[test]
fn queue_bound_is_enforced() {
    let server = start(1, 2, None);
    let mut c = client(&server);
    // Worker takes the first; capacity 2 admits two more into the queue.
    let mut ids = vec![c.submit(spec(1, 512)).expect("submit")];
    let mut rejected = 0;
    for seed in 2..8 {
        match c.submit(spec(seed, 512)) {
            Ok(id) => ids.push(id),
            Err(e) => {
                assert!(e.contains("queue full"), "unexpected error: {e}");
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "queue bound never triggered");
    for id in &ids {
        c.cancel(id).expect("cancel");
    }
    for id in &ids {
        c.wait(id).expect("wait");
    }
    server.shutdown(true);
    server.wait();
}

#[test]
fn invalid_specs_are_rejected_at_submit() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    let mut bad = spec(0, 64);
    bad.op = "NOPE".into();
    assert!(c.submit(bad).unwrap_err().contains("unknown case"));
    let mut bad = spec(0, 64);
    bad.target = "vax".into();
    assert!(c.submit(bad).unwrap_err().contains("unknown target"));
    let bad = spec(0, 0);
    assert!(c.submit(bad).unwrap_err().contains("trials"));
    let stats = c.stats().expect("stats");
    assert_eq!(stats.jobs_submitted, 0);
    server.shutdown(true);
    server.wait();
}

#[test]
fn graceful_shutdown_drains_the_queue() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    let a = c.submit(spec(1, 64)).expect("submit");
    let b = c.submit(spec(2, 64)).expect("submit");
    // Drain: both jobs must complete even though shutdown arrives first.
    let mut c2 = client(&server);
    c2.shutdown(true).expect("shutdown");
    let ra = c.wait(&a).expect("wait");
    let rb = c.wait(&b).expect("wait");
    assert_eq!(ra.state, "done");
    assert_eq!(rb.state, "done");
    // New submits are refused while draining (if the server is still up).
    if let Err(e) = c.submit(spec(3, 64)) {
        assert!(
            e.contains("draining") || e.contains("connection"),
            "unexpected error: {e}"
        );
    }
    server.wait();
}

#[test]
fn immediate_shutdown_cancels_everything() {
    let server = start(1, 8, None);
    let mut c = client(&server);
    let a = c.submit(spec(1, 4096)).expect("submit");
    let b = c.submit(spec(2, 4096)).expect("submit");
    let mut c2 = client(&server);
    c2.shutdown(false).expect("shutdown");
    let ra = c.wait(&a).expect("wait");
    let rb = c.wait(&b).expect("wait");
    assert_eq!(rb.state, "cancelled");
    assert!(ra.state == "cancelled" || ra.state == "done");
    server.wait();
}
