//! Tuning-as-a-service for the Ansor reproduction.
//!
//! `ansor-tune` is a batch tool: one process, one search, caches die with
//! the process. This crate turns tuning into a long-running service — the
//! `ansor-serve` daemon hosts N concurrent [`TuningSession`]s
//! (`ansor_core::TuningSession`) over a newline-delimited JSON protocol
//! and keeps a persistent [`WarmStore`] of measurement results,
//! featurizations, and tuning records, so repeat jobs start warm instead
//! of cold. See `docs/SERVING.md` for the protocol reference and the
//! determinism guarantees (a served job is bit-identical to the same seed
//! run through `ansor-tune` cold).
//!
//! Modules:
//!
//! - [`proto`] — wire types and line framing;
//! - [`store`] — the shared warm store (caches + atomic JSON persistence);
//! - [`journal`] — the append-only job journal (the daemon's flight
//!   recorder, replayed on restart);
//! - [`server`] — the daemon (accept loop, bounded job queue, session
//!   workers);
//! - [`client`] — a thin synchronous client.
//!
//! [`TuningSession`]: ansor_core::TuningSession

#![warn(missing_docs)]

pub mod client;
pub mod journal;
pub mod proto;
pub mod server;
pub mod store;

pub use client::Client;
pub use journal::{JobJournal, JournalEvent, JournalReplay};
pub use proto::{
    CacheDeltas, JobCounters, JobResult, JobSpec, JobStatus, Request, Response, ServerStats,
    TraceChunk, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server};
pub use store::{StoreEntry, StoreLoadStats, WarmStore, STORE_VERSION};
