//! The `ansor-serve` daemon: a TCP server hosting concurrent tuning
//! sessions over the newline-delimited JSON protocol.
//!
//! Architecture: an accept loop hands each connection to a detached
//! handler thread; handlers enqueue jobs into a bounded queue; a fixed
//! pool of session workers drains the queue, each running one
//! [`TuningSession`] per job wired into the shared [`WarmStore`]. All
//! coordination is one mutex around the job table plus two condvars
//! (work available, job finished) — no async runtime, matching the
//! repo's std-only discipline.
//!
//! Determinism: a job is executed exactly as `ansor-tune` would execute
//! the same flags — same task name, same fingerprint, same cold session
//! wiring — with the shared caches layered on top, which are
//! determinism-transparent (see `ansor_core::session`). Warm starts are
//! opt-in per job because they intentionally change the search
//! trajectory.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ansor_core::{log_fingerprint, SearchTask, TuningOptions, TuningSession};
use ansor_workloads::build_case;
use hwsim::{HardwareTarget, Measurer};
use serde::Deserialize as _;
use telemetry::Telemetry;

use crate::proto::{
    decode_request, read_line, write_line, CacheDeltas, JobResult, JobSpec, JobStatus, Request,
    Response, ServerStats, PROTOCOL_VERSION,
};
use crate::store::WarmStore;

/// Prerank fraction used when a job opts into `transfer` without naming
/// an explicit `prerank_keep`.
const DEFAULT_TRANSFER_PRERANK_KEEP: f64 = 0.25;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Session worker threads (concurrent jobs).
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_cap: usize,
    /// Warm-store path; `None` for an in-memory store.
    pub store_path: Option<String>,
    /// Fault spec string jobs run under (the global `hwsim` plan must be
    /// set to match by the caller; the string here feeds fingerprints and
    /// class keys). Jobs may override it per-spec; overridden jobs get
    /// their own fingerprints/class keys and an explicit measurer plan.
    pub faults: String,
    /// Baseline runtime thread count jobs run under (0 = auto). Jobs may
    /// override it per-spec; the setting is process-global, so under
    /// concurrent jobs the last-started job's value wins (determinism is
    /// thread-count-transparent — this is perf-only).
    pub threads: usize,
    /// Warm-store serialized-entry byte budget; `None` = unlimited. When
    /// exceeded, least-recently-used class entries are evicted.
    pub store_budget: Option<u64>,
    /// Telemetry handle for `serve/*` gauges and session counters.
    pub telemetry: Telemetry,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            store_path: None,
            faults: "none".into(),
            threads: 0,
            store_budget: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Progress {
    rounds: u64,
    trials: u64,
    best_seconds: Option<f64>,
}

struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    progress: Arc<Mutex<Progress>>,
    result: Option<JobResult>,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    queue: VecDeque<String>,
    jobs: HashMap<String, Job>,
    active: usize,
    /// No new submits; queued jobs still run (graceful shutdown).
    draining: bool,
    /// Workers and the accept loop exit.
    stop: bool,
    submitted: u64,
    done: u64,
    failed: u64,
    cancelled: u64,
}

struct Shared {
    cfg: ServeConfig,
    store: WarmStore,
    jobs: Mutex<JobTable>,
    work_cv: Condvar,
    done_cv: Condvar,
}

impl Shared {
    /// Publishes the `serve/*` gauge family from the (locked) job table.
    fn publish_gauges(&self, t: &JobTable) {
        let tel = &self.cfg.telemetry;
        tel.gauge_set("serve/queue_depth", t.queue.len() as f64);
        tel.gauge_set("serve/active_sessions", t.active as f64);
        tel.gauge_set("serve/jobs_submitted", t.submitted as f64);
        tel.gauge_set("serve/jobs_done", t.done as f64);
        tel.gauge_set("serve/jobs_failed", t.failed as f64);
        tel.gauge_set("serve/jobs_cancelled", t.cancelled as f64);
        tel.gauge_set("serve/draining", if t.draining { 1.0 } else { 0.0 });
        tel.gauge_set("serve/store_entries", self.store.entry_count() as f64);
        tel.gauge_set("serve/store_records", self.store.record_count() as f64);
        tel.gauge_set("serve/store_bytes", self.store.resident_bytes() as f64);
        tel.gauge_set("serve/store_evictions", self.store.eviction_count() as f64);
        tel.gauge_set(
            "serve/surrogate_updates",
            self.store.surrogate_updates() as f64,
        );
    }
}

/// A running daemon. Dropping the handle does not stop the server; call
/// [`Server::shutdown`] (or send a `shutdown` request) then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the store, binds the listener, and spawns the worker pool and
    /// accept loop.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let store = match &cfg.store_path {
            Some(p) => {
                let (store, stats) = WarmStore::open(p)?;
                if stats.entries > 0 {
                    eprintln!(
                        "warm store {}: {} classes, {} records, {} cache entries primed{}",
                        p,
                        stats.entries,
                        stats.records,
                        stats.primed,
                        if stats.replay_failures > 0 {
                            format!(" ({} records failed to replay)", stats.replay_failures)
                        } else {
                            String::new()
                        }
                    );
                }
                store
            }
            None => WarmStore::in_memory(),
        };
        store.set_byte_budget(cfg.store_budget);
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let local_addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cfg,
            store,
            jobs: Mutex::new(JobTable::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut threads = Vec::new();
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .map_err(|e| e.to_string())?,
            );
        }
        {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&sh, listener))
                    .map_err(|e| e.to_string())?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared warm store (read access for benchmarks and tests — e.g.
    /// snapshotting the transfer surrogate after a batch of jobs).
    pub fn store(&self) -> &WarmStore {
        &self.shared.store
    }

    /// Initiates shutdown: with `drain`, queued and running jobs finish
    /// first; without, queued jobs are cancelled and running jobs are
    /// signalled to stop at their next round.
    pub fn shutdown(&self, drain: bool) {
        initiate_shutdown(&self.shared, drain);
    }

    /// Blocks until the server has fully stopped (all jobs settled, all
    /// threads exited) and persists the store one final time.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Err(e) = self.shared.store.save() {
            eprintln!("warning: final store save failed: {e}");
        }
    }
}

/// Flags shutdown and wakes everyone; a monitor inside the worker/accept
/// loops converts "draining and idle" into a full stop.
fn initiate_shutdown(shared: &Arc<Shared>, drain: bool) {
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    t.draining = true;
    if !drain {
        while let Some(id) = t.queue.pop_front() {
            if let Some(job) = t.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                job.result = Some(cancelled_result(&id, &job.spec));
                t.cancelled += 1;
            }
        }
        for job in t.jobs.values() {
            job.cancel.store(true, Ordering::Relaxed);
        }
    }
    maybe_stop(shared, &mut t);
    shared.publish_gauges(&t);
    drop(t);
    shared.work_cv.notify_all();
    shared.done_cv.notify_all();
}

/// If the server is draining and idle, flips to a full stop.
fn maybe_stop(shared: &Arc<Shared>, t: &mut JobTable) {
    if t.draining && t.queue.is_empty() && t.active == 0 {
        t.stop = true;
        shared.work_cv.notify_all();
        shared.done_cv.notify_all();
    }
}

fn cancelled_result(id: &str, spec: &JobSpec) -> JobResult {
    JobResult {
        job: id.to_string(),
        task: spec.task_name(),
        state: "cancelled".into(),
        trials: 0,
        best_seconds: None,
        best_gflops: None,
        best_signature: None,
        log_records: 0,
        log_fingerprint: 0,
        warm: CacheDeltas::default(),
        wall_ms: 0.0,
        error: None,
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Claim the next queued job (or exit on stop).
        let (id, spec, cancel, progress) = {
            let mut t = shared.jobs.lock().expect("job table lock poisoned");
            loop {
                if t.stop {
                    return;
                }
                if let Some(id) = t.queue.pop_front() {
                    let claimed = {
                        let job = t.jobs.get_mut(&id).expect("queued job exists");
                        job.state = JobState::Running;
                        (
                            id.clone(),
                            job.spec.clone(),
                            Arc::clone(&job.cancel),
                            Arc::clone(&job.progress),
                        )
                    };
                    t.active += 1;
                    shared.publish_gauges(&t);
                    break claimed;
                }
                t = shared.work_cv.wait(t).expect("job table lock poisoned");
            }
        };

        let (result, log) = run_job(shared, &id, &spec, &cancel, &progress);

        if result.state == "done" {
            // Persist what the job learned before reporting completion, so
            // a client observing "done" can rely on the store being warm.
            let faults = spec.faults.as_deref().unwrap_or(&shared.cfg.faults);
            shared.store.absorb(&spec, faults, &log);
            if let Err(e) = shared.store.save() {
                eprintln!("warning: store save failed: {e}");
            }
        }

        let mut t = shared.jobs.lock().expect("job table lock poisoned");
        t.active -= 1;
        match result.state.as_str() {
            "done" => t.done += 1,
            "failed" => t.failed += 1,
            _ => t.cancelled += 1,
        }
        if let Some(job) = t.jobs.get_mut(&id) {
            job.state = match result.state.as_str() {
                "done" => JobState::Done,
                "failed" => JobState::Failed,
                _ => JobState::Cancelled,
            };
            job.result = Some(result);
        }
        maybe_stop(shared, &mut t);
        shared.publish_gauges(&t);
        drop(t);
        shared.done_cv.notify_all();
    }
}

/// Executes one job exactly as `ansor-tune` would, plus shared caches.
/// Returns the wire-facing result and the full tuning log (for the store;
/// the log stays off the wire — clients get its fingerprint and count).
fn run_job(
    shared: &Arc<Shared>,
    id: &str,
    spec: &JobSpec,
    cancel: &Arc<AtomicBool>,
    progress: &Arc<Mutex<Progress>>,
) -> (JobResult, Vec<ansor_core::TuningRecordLog>) {
    let started = Instant::now();
    let fail = |error: String| {
        (
            JobResult {
                job: id.to_string(),
                task: spec.task_name(),
                state: "failed".into(),
                trials: 0,
                best_seconds: None,
                best_gflops: None,
                best_signature: None,
                log_records: 0,
                log_fingerprint: 0,
                warm: CacheDeltas::default(),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                error: Some(error),
            },
            Vec::new(),
        )
    };
    let Some(dag) = build_case(&spec.op, spec.shape, spec.batch) else {
        return fail(format!("unknown case {:?} shape {}", spec.op, spec.shape));
    };
    let Some(target) = HardwareTarget::by_name(&spec.target) else {
        return fail(format!("unknown target {:?}", spec.target));
    };
    // Per-job overrides. The fault spec feeds the fingerprint and class
    // key, so overridden jobs occupy their own warm-store class; the
    // thread count is process-global and perf-only (see `ServeConfig`).
    let faults = spec.faults.as_deref().unwrap_or(&shared.cfg.faults);
    let fault_plan = match spec.faults.as_deref().map(hwsim::FaultPlan::parse) {
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => return fail(format!("bad fault spec: {e}")),
        None => None,
    };
    ansor_runtime::set_threads(spec.threads.unwrap_or(shared.cfg.threads));
    let transfer = spec.transfer == Some(true);
    let prerank_keep = spec
        .prerank_keep
        .or_else(|| transfer.then_some(DEFAULT_TRANSFER_PRERANK_KEEP));
    let tel = shared.cfg.telemetry.clone();
    let task = SearchTask::new(spec.task_name(), dag.clone(), target.clone());
    let options = TuningOptions {
        num_measure_trials: spec.trials,
        seed: spec.seed,
        prerank_keep,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut measurer = Measurer::new(target);
    measurer.set_telemetry(tel.clone());
    if let Some(plan) = fault_plan {
        measurer.set_fault_plan(Some(plan));
    }
    let mut session = TuningSession::new(task, options, measurer, spec.fingerprint(faults));

    let class = spec.class_key(faults);
    session.share_measure_cache(shared.store.measure_cache(&class));
    session.share_feature_cache(shared.store.feature_cache());
    if spec.warm_start == Some(true) {
        let records = shared.store.records_for(&class);
        session.warm_start(&records);
    }
    if transfer {
        // Cross-class transfer: start from the store-wide surrogate
        // (trained on every completed job, whatever its class key) so the
        // prerank stage is informed from trial one.
        session.install_surrogate(shared.store.surrogate());
    }

    let before = session.cache_stats();
    let gauge = format!("serve/session/{id}/trials");
    session.run(|s| {
        let mut p = progress.lock().expect("progress lock poisoned");
        p.rounds = s.rounds();
        p.trials = s.trials();
        p.best_seconds = s.best_seconds().is_finite().then(|| s.best_seconds());
        tel.gauge_set(&gauge, s.trials() as f64);
        !cancel.load(Ordering::Relaxed)
    });
    let delta = session.cache_stats().since(&before);
    let warm = CacheDeltas {
        measure_hits: delta.measure_hits,
        measure_misses: delta.measure_misses,
        feature_hits: delta.feature_hits,
        feature_misses: delta.feature_misses,
        score_hits: delta.score_hits,
        score_misses: delta.score_misses,
    };
    let was_cancelled = cancel.load(Ordering::Relaxed);

    {
        let mut p = progress.lock().expect("progress lock poisoned");
        p.rounds = session.rounds();
        p.trials = session.trials();
        p.best_seconds = session
            .best_seconds()
            .is_finite()
            .then(|| session.best_seconds());
        tel.gauge_set(&gauge, session.trials() as f64);
    }

    let best_seconds = session.best_seconds();
    let finite_best = best_seconds.is_finite().then_some(best_seconds);
    let log = session.log().to_vec();
    let result = JobResult {
        job: id.to_string(),
        task: spec.task_name(),
        state: if was_cancelled { "cancelled" } else { "done" }.into(),
        trials: session.trials(),
        best_seconds: finite_best,
        best_gflops: finite_best.map(|s| dag.flop_count() / s / 1e9),
        best_signature: session.best_individual().map(|i| i.state.signature()),
        log_records: log.len() as u64,
        log_fingerprint: log_fingerprint(&log),
        warm,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        error: None,
    };
    (result, log)
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        {
            let t = shared.jobs.lock().expect("job table lock poisoned");
            if t.stop {
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(&sh, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // One request/response per round trip: latency matters, Nagle hurts.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF or mid-write disconnect
            Err(e) => {
                // Oversized or non-UTF-8 line: tell the client, then hang
                // up — the stream is no longer line-synchronized.
                let _ = write_line(&mut writer, &Response::failure(None, e.to_string()));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match decode_request(&line) {
            Ok(r) => r,
            Err(e) => {
                // Best-effort id recovery so the client can correlate.
                let id = serde_json::from_str::<serde::Value>(&line)
                    .ok()
                    .and_then(|v| match v {
                        serde::Value::Object(m) => m.get("id").cloned(),
                        _ => None,
                    })
                    .and_then(|v| u64::from_value(&v).ok());
                if write_line(&mut writer, &Response::failure(id, e)).is_err() {
                    return;
                }
                continue;
            }
        };
        let resp = dispatch(shared, &req);
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if req.method == "shutdown" {
            return;
        }
    }
}

fn dispatch(shared: &Arc<Shared>, req: &Request) -> Response {
    match req.method.as_str() {
        "submit" => handle_submit(shared, req),
        "status" => handle_status(shared, req),
        "result" => handle_result(shared, req, false),
        "wait" => handle_result(shared, req, true),
        "cancel" => handle_cancel(shared, req),
        "stats" => handle_stats(shared, req),
        "shutdown" => {
            initiate_shutdown(shared, req.drain.unwrap_or(true));
            Response::success(req.id)
        }
        other => Response::failure(req.id, format!("unknown method {other:?}")),
    }
}

fn handle_submit(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(spec) = &req.spec else {
        return Response::failure(req.id, "submit requires a job spec");
    };
    // Validate eagerly so a typo fails at submit, not minutes later.
    if build_case(&spec.op, spec.shape, spec.batch).is_none() {
        return Response::failure(
            req.id,
            format!("unknown case {:?} shape {}", spec.op, spec.shape),
        );
    }
    if HardwareTarget::by_name(&spec.target).is_none() {
        return Response::failure(req.id, format!("unknown target {:?}", spec.target));
    }
    if spec.trials == 0 {
        return Response::failure(req.id, "trials must be positive");
    }
    if let Some(f) = &spec.faults {
        if let Err(e) = hwsim::FaultPlan::parse(f) {
            return Response::failure(req.id, format!("bad fault spec: {e}"));
        }
    }
    if let Some(k) = spec.prerank_keep {
        if !(k > 0.0 && k <= 1.0) {
            return Response::failure(req.id, "prerank_keep must be in (0, 1]");
        }
    }
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    if t.draining {
        return Response::failure(req.id, "server is draining; not accepting jobs");
    }
    if t.queue.len() >= shared.cfg.queue_cap {
        return Response::failure(
            req.id,
            format!("queue full ({} jobs queued)", t.queue.len()),
        );
    }
    t.next_id += 1;
    let id = format!("job-{}", t.next_id);
    t.jobs.insert(
        id.clone(),
        Job {
            spec: spec.clone(),
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            progress: Arc::new(Mutex::new(Progress::default())),
            result: None,
        },
    );
    t.queue.push_back(id.clone());
    t.submitted += 1;
    shared.publish_gauges(&t);
    drop(t);
    shared.work_cv.notify_one();
    let mut resp = Response::success(req.id);
    resp.job = Some(id);
    resp
}

fn job_status(id: &str, job: &Job) -> JobStatus {
    let p = *job.progress.lock().expect("progress lock poisoned");
    JobStatus {
        job: id.to_string(),
        state: job.state.as_str().into(),
        rounds: p.rounds,
        trials: p.trials,
        trials_budget: job.spec.trials as u64,
        best_seconds: p.best_seconds,
    }
}

fn handle_status(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "status requires a job id");
    };
    let t = shared.jobs.lock().expect("job table lock poisoned");
    match t.jobs.get(id) {
        Some(job) => {
            let mut resp = Response::success(req.id);
            resp.status = Some(job_status(id, job));
            resp
        }
        None => Response::failure(req.id, format!("no such job {id:?}")),
    }
}

fn handle_result(shared: &Arc<Shared>, req: &Request, block: bool) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "result requires a job id");
    };
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    loop {
        match t.jobs.get(id) {
            None => return Response::failure(req.id, format!("no such job {id:?}")),
            Some(job) if job.state.finished() => {
                let mut resp = Response::success(req.id);
                resp.result = job.result.clone();
                return resp;
            }
            Some(job) => {
                if !block {
                    return Response::failure(
                        req.id,
                        format!("job {id} not finished (state {})", job.state.as_str()),
                    );
                }
            }
        }
        t = shared.done_cv.wait(t).expect("job table lock poisoned");
    }
}

fn handle_cancel(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "cancel requires a job id");
    };
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    let (was_queued, spec) = match t.jobs.get(id) {
        Some(job) => {
            job.cancel.store(true, Ordering::Relaxed);
            (job.state == JobState::Queued, job.spec.clone())
        }
        None => return Response::failure(req.id, format!("no such job {id:?}")),
    };
    if was_queued {
        t.queue.retain(|q| q != id);
        let job = t.jobs.get_mut(id).expect("job exists");
        job.state = JobState::Cancelled;
        job.result = Some(cancelled_result(id, &spec));
        t.cancelled += 1;
        maybe_stop(shared, &mut t);
        shared.publish_gauges(&t);
        drop(t);
        shared.done_cv.notify_all();
    }
    Response::success(req.id)
}

fn handle_stats(shared: &Arc<Shared>, req: &Request) -> Response {
    let t = shared.jobs.lock().expect("job table lock poisoned");
    let mut resp = Response::success(req.id);
    resp.stats = Some(ServerStats {
        protocol_version: PROTOCOL_VERSION,
        jobs_submitted: t.submitted,
        jobs_queued: t.queue.len() as u64,
        jobs_active: t.active as u64,
        jobs_done: t.done,
        jobs_failed: t.failed,
        jobs_cancelled: t.cancelled,
        queue_cap: shared.cfg.queue_cap as u64,
        workers: shared.cfg.workers.max(1) as u64,
        store_entries: shared.store.entry_count() as u64,
        store_records: shared.store.record_count() as u64,
        store_bytes: shared.store.resident_bytes(),
        store_evictions: shared.store.eviction_count(),
        surrogate_updates: shared.store.surrogate_updates(),
        draining: t.draining,
    });
    resp
}
