//! The `ansor-serve` daemon: a TCP server hosting concurrent tuning
//! sessions over the newline-delimited JSON protocol.
//!
//! Architecture: an accept loop hands each connection to a detached
//! handler thread; handlers enqueue jobs into a bounded queue; a fixed
//! pool of session workers drains the queue, each running one
//! [`TuningSession`] per job wired into the shared [`WarmStore`]. All
//! coordination is one mutex around the job table plus two condvars
//! (work available, job finished) — no async runtime, matching the
//! repo's std-only discipline.
//!
//! Determinism: a job is executed exactly as `ansor-tune` would execute
//! the same flags — same task name, same fingerprint, same cold session
//! wiring — with the shared caches layered on top, which are
//! determinism-transparent (see `ansor_core::session`). Warm starts are
//! opt-in per job because they intentionally change the search
//! trajectory.

use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ansor_core::{log_fingerprint, SearchTask, TuningOptions, TuningSession};
use ansor_workloads::build_case;
use hwsim::{HardwareTarget, Measurer};
use serde::Deserialize as _;
use telemetry::{Snapshot, Telemetry};

use crate::journal::{JobJournal, JournalEvent};
use crate::proto::{
    decode_request, read_line, write_line, CacheDeltas, JobCounters, JobResult, JobSpec, JobStatus,
    Request, Response, ServerStats, TraceChunk, PROTOCOL_VERSION,
};
use crate::store::WarmStore;

/// Prerank fraction used when a job opts into `transfer` without naming
/// an explicit `prerank_keep`.
const DEFAULT_TRANSFER_PRERANK_KEEP: f64 = 0.25;

/// Raw bytes per `trace` response chunk. Sized so the enclosing response
/// line stays under [`crate::proto::MAX_LINE_BYTES`] even after JSON
/// escaping roughly doubles the payload (trace lines are full of quotes).
const TRACE_CHUNK_BYTES: usize = 256 * 1024;

/// Server configuration.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Session worker threads (concurrent jobs).
    pub workers: usize,
    /// Bounded queue capacity; submits beyond it are rejected.
    pub queue_cap: usize,
    /// Warm-store path; `None` for an in-memory store.
    pub store_path: Option<String>,
    /// Fault spec string jobs run under (the global `hwsim` plan must be
    /// set to match by the caller; the string here feeds fingerprints and
    /// class keys). Jobs may override it per-spec; overridden jobs get
    /// their own fingerprints/class keys and an explicit measurer plan.
    pub faults: String,
    /// Baseline runtime thread count jobs run under (0 = auto). Jobs may
    /// override it per-spec; the setting is process-global, so under
    /// concurrent jobs the last-started job's value wins (determinism is
    /// thread-count-transparent — this is perf-only).
    pub threads: usize,
    /// Warm-store serialized-entry byte budget; `None` = unlimited. When
    /// exceeded, least-recently-used class entries are evicted.
    pub store_budget: Option<u64>,
    /// Telemetry handle for the daemon's own `serve/*` gauges and
    /// histograms. Sessions do *not* share this registry: each job gets
    /// its own isolated [`Telemetry`] (see `trace_dir`), so counters from
    /// concurrent jobs never interleave here.
    pub telemetry: Telemetry,
    /// Directory for per-job JSONL traces (`<job-id>.trace.jsonl`).
    /// `None` disables per-job tracing; jobs still get isolated
    /// metrics-only telemetry for their counter summaries.
    pub trace_dir: Option<String>,
    /// Job-journal path override. Defaults to `journal.jsonl` next to the
    /// warm store when `store_path` is set; `None` with an in-memory
    /// store disables the journal.
    pub journal_path: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            store_path: None,
            faults: "none".into(),
            threads: 0,
            store_budget: None,
            telemetry: Telemetry::disabled(),
            trace_dir: None,
            journal_path: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn finished(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Numeric encoding for the `serve/job/<id>/state` gauge (the
    /// exporter maps it back to the string form).
    fn gauge_code(self) -> f64 {
        match self {
            JobState::Queued => 0.0,
            JobState::Running => 1.0,
            JobState::Done => 2.0,
            JobState::Failed => 3.0,
            JobState::Cancelled => 4.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Progress {
    rounds: u64,
    trials: u64,
    best_seconds: Option<f64>,
}

struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    progress: Arc<Mutex<Progress>>,
    result: Option<JobResult>,
    /// When the job was accepted (queue-wait accounting).
    submitted: Instant,
}

#[derive(Default)]
struct JobTable {
    next_id: u64,
    queue: VecDeque<String>,
    jobs: HashMap<String, Job>,
    active: usize,
    /// No new submits; queued jobs still run (graceful shutdown).
    draining: bool,
    /// Workers and the accept loop exit.
    stop: bool,
    submitted: u64,
    done: u64,
    failed: u64,
    cancelled: u64,
    /// Measurement trials consumed by finished jobs (Σ `JobResult::trials`).
    trials_total: u64,
}

struct Shared {
    cfg: ServeConfig,
    store: WarmStore,
    jobs: Mutex<JobTable>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// The job journal (the daemon's flight recorder); `None` when
    /// neither a journal path nor a store path was configured.
    journal: Option<Mutex<JobJournal>>,
}

impl Shared {
    /// Publishes the `serve/*` gauge family from the (locked) job table.
    fn publish_gauges(&self, t: &JobTable) {
        let tel = &self.cfg.telemetry;
        tel.gauge_set("serve/queue_depth", t.queue.len() as f64);
        tel.gauge_set("serve/active_sessions", t.active as f64);
        tel.gauge_set("serve/jobs_submitted", t.submitted as f64);
        tel.gauge_set("serve/jobs_done", t.done as f64);
        tel.gauge_set("serve/jobs_failed", t.failed as f64);
        tel.gauge_set("serve/jobs_cancelled", t.cancelled as f64);
        tel.gauge_set("serve/draining", if t.draining { 1.0 } else { 0.0 });
        tel.gauge_set("serve/store_entries", self.store.entry_count() as f64);
        tel.gauge_set("serve/store_records", self.store.record_count() as f64);
        tel.gauge_set("serve/store_bytes", self.store.resident_bytes() as f64);
        tel.gauge_set("serve/store_evictions", self.store.eviction_count() as f64);
        tel.gauge_set(
            "serve/surrogate_updates",
            self.store.surrogate_updates() as f64,
        );
        tel.gauge_set("serve/trials_total", t.trials_total as f64);
    }

    /// Appends one journal event; journal failures are warnings, never
    /// fatal (the journal is observability, not correctness).
    fn journal_append(&self, event: &JournalEvent) {
        if let Some(journal) = &self.journal {
            let mut j = journal.lock().expect("journal lock poisoned");
            if let Err(e) = j.append(event) {
                eprintln!("warning: journal append failed: {e}");
            }
        }
    }

    /// Publishes the `serve/job/<id>/*` gauge family for one job. These
    /// live in the daemon's shared registry (namespaced by job id, so
    /// concurrent jobs never collide) and feed the exporter's `/status`
    /// jobs table and the `ansor-top` jobs pane.
    fn publish_job_gauges(&self, id: &str, state: JobState, p: &Progress, budget: u64) {
        let tel = &self.cfg.telemetry;
        tel.gauge_set(&format!("serve/job/{id}/state"), state.gauge_code());
        tel.gauge_set(&format!("serve/job/{id}/rounds"), p.rounds as f64);
        tel.gauge_set(&format!("serve/job/{id}/trials"), p.trials as f64);
        tel.gauge_set(&format!("serve/job/{id}/trials_budget"), budget as f64);
        if let Some(best) = p.best_seconds {
            tel.gauge_set(&format!("serve/job/{id}/best_seconds"), best);
        }
    }
}

/// A running daemon. Dropping the handle does not stop the server; call
/// [`Server::shutdown`] (or send a `shutdown` request) then
/// [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the store, binds the listener, and spawns the worker pool and
    /// accept loop.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let store = match &cfg.store_path {
            Some(p) => {
                let (store, stats) = WarmStore::open(p)?;
                if stats.entries > 0 {
                    eprintln!(
                        "warm store {}: {} classes, {} records, {} cache entries primed{}",
                        p,
                        stats.entries,
                        stats.records,
                        stats.primed,
                        if stats.replay_failures > 0 {
                            format!(" ({} records failed to replay)", stats.replay_failures)
                        } else {
                            String::new()
                        }
                    );
                }
                store
            }
            None => WarmStore::in_memory(),
        };
        store.set_byte_budget(cfg.store_budget);
        if let Some(dir) = &cfg.trace_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("create trace dir {dir}: {e}"))?;
        }
        // The journal lives next to the warm store unless overridden.
        let journal_path = cfg.journal_path.clone().or_else(|| {
            cfg.store_path.as_ref().map(|p| {
                Path::new(p)
                    .with_file_name("journal.jsonl")
                    .display()
                    .to_string()
            })
        });
        let workers = cfg.workers.max(1);
        let mut first_job_id = 0;
        let journal = match &journal_path {
            Some(p) => {
                let (mut j, replay) =
                    JobJournal::open(p).map_err(|e| format!("journal {p}: {e}"))?;
                if !replay.interrupted.is_empty() {
                    eprintln!(
                        "journal {}: {} job(s) from a prior run marked interrupted: {}",
                        p,
                        replay.interrupted.len(),
                        replay.interrupted.join(", ")
                    );
                }
                // Never reuse a job id the journal has already seen.
                first_job_id = replay.max_job_id;
                j.append(&JournalEvent::DaemonStart {
                    workers: workers as u64,
                    queue_cap: cfg.queue_cap as u64,
                })
                .map_err(|e| format!("journal {p}: {e}"))?;
                Some(Mutex::new(j))
            }
            None => None,
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        let local_addr = listener.local_addr().map_err(|e| e.to_string())?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;

        let shared = Arc::new(Shared {
            cfg,
            store,
            jobs: Mutex::new(JobTable {
                next_id: first_job_id,
                ..JobTable::default()
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            journal,
        });
        let mut threads = Vec::new();
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .map_err(|e| e.to_string())?,
            );
        }
        {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&sh, listener))
                    .map_err(|e| e.to_string())?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared warm store (read access for benchmarks and tests — e.g.
    /// snapshotting the transfer surrogate after a batch of jobs).
    pub fn store(&self) -> &WarmStore {
        &self.shared.store
    }

    /// Initiates shutdown: with `drain`, queued and running jobs finish
    /// first; without, queued jobs are cancelled and running jobs are
    /// signalled to stop at their next round.
    pub fn shutdown(&self, drain: bool) {
        initiate_shutdown(&self.shared, drain);
    }

    /// Blocks until the server has fully stopped (all jobs settled, all
    /// threads exited) and persists the store one final time.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Err(e) = self.shared.store.save() {
            eprintln!("warning: final store save failed: {e}");
        }
    }
}

/// Flags shutdown and wakes everyone; a monitor inside the worker/accept
/// loops converts "draining and idle" into a full stop.
fn initiate_shutdown(shared: &Arc<Shared>, drain: bool) {
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    t.draining = true;
    if !drain {
        while let Some(id) = t.queue.pop_front() {
            if let Some(job) = t.jobs.get_mut(&id) {
                let queue_wait_ms = job.submitted.elapsed().as_secs_f64() * 1e3;
                job.state = JobState::Cancelled;
                job.result = Some(cancelled_result(&id, &job.spec, queue_wait_ms));
                t.cancelled += 1;
                journal_queued_cancel(shared, &id, queue_wait_ms);
            }
        }
        for job in t.jobs.values() {
            job.cancel.store(true, Ordering::Relaxed);
        }
    }
    maybe_stop(shared, &mut t);
    shared.publish_gauges(&t);
    drop(t);
    shared.work_cv.notify_all();
    shared.done_cv.notify_all();
}

/// If the server is draining and idle, flips to a full stop.
fn maybe_stop(shared: &Arc<Shared>, t: &mut JobTable) {
    if t.draining && t.queue.is_empty() && t.active == 0 {
        t.stop = true;
        shared.work_cv.notify_all();
        shared.done_cv.notify_all();
    }
}

fn cancelled_result(id: &str, spec: &JobSpec, queue_wait_ms: f64) -> JobResult {
    JobResult {
        job: id.to_string(),
        task: spec.task_name(),
        state: "cancelled".into(),
        trials: 0,
        best_seconds: None,
        best_gflops: None,
        best_signature: None,
        log_records: 0,
        log_fingerprint: 0,
        warm: CacheDeltas::default(),
        wall_ms: 0.0,
        queue_wait_ms,
        counters: JobCounters::default(),
        error: None,
    }
}

/// Journals and gauges a job cancelled while still queued (it never ran,
/// so its outcome record carries queue-wait only).
fn journal_queued_cancel(shared: &Arc<Shared>, id: &str, queue_wait_ms: f64) {
    shared.cfg.telemetry.gauge_set(
        &format!("serve/job/{id}/state"),
        JobState::Cancelled.gauge_code(),
    );
    shared.journal_append(&JournalEvent::Finish {
        job: id.to_string(),
        outcome: "cancelled".into(),
        queue_wait_ms,
        wall_ms: 0.0,
        trials: 0,
        best_gflops: None,
        cache: CacheDeltas::default(),
        absorbed_records: 0,
        trace: None,
    });
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Claim the next queued job (or exit on stop).
        let (id, spec, cancel, progress, queue_wait_ms) = {
            let mut t = shared.jobs.lock().expect("job table lock poisoned");
            loop {
                if t.stop {
                    return;
                }
                if let Some(id) = t.queue.pop_front() {
                    let claimed = {
                        let job = t.jobs.get_mut(&id).expect("queued job exists");
                        job.state = JobState::Running;
                        (
                            id.clone(),
                            job.spec.clone(),
                            Arc::clone(&job.cancel),
                            Arc::clone(&job.progress),
                            job.submitted.elapsed().as_secs_f64() * 1e3,
                        )
                    };
                    t.active += 1;
                    shared.publish_gauges(&t);
                    break claimed;
                }
                t = shared.work_cv.wait(t).expect("job table lock poisoned");
            }
        };

        {
            let tel = &shared.cfg.telemetry;
            tel.observe("serve/queue_wait_ms", queue_wait_ms);
            tel.gauge_set(
                &format!("serve/job/{id}/state"),
                JobState::Running.gauge_code(),
            );
            tel.gauge_set(&format!("serve/job/{id}/queue_wait_ms"), queue_wait_ms);
        }
        shared.journal_append(&JournalEvent::Start {
            job: id.clone(),
            queue_wait_ms,
        });

        let (result, log, trace_file) =
            run_job(shared, &id, &spec, &cancel, &progress, queue_wait_ms);

        let mut absorbed_records = 0u64;
        if result.state == "done" {
            // Persist what the job learned before reporting completion, so
            // a client observing "done" can rely on the store being warm.
            let faults = spec.faults.as_deref().unwrap_or(&shared.cfg.faults);
            absorbed_records = shared.store.absorb(&spec, faults, &log) as u64;
            if let Err(e) = shared.store.save() {
                eprintln!("warning: store save failed: {e}");
            }
        }

        shared.journal_append(&JournalEvent::Finish {
            job: id.clone(),
            outcome: result.state.clone(),
            queue_wait_ms,
            wall_ms: result.wall_ms,
            trials: result.trials,
            best_gflops: result.best_gflops,
            cache: result.warm,
            absorbed_records,
            trace: trace_file,
        });

        let mut t = shared.jobs.lock().expect("job table lock poisoned");
        t.active -= 1;
        t.trials_total += result.trials;
        let final_state = match result.state.as_str() {
            "done" => {
                t.done += 1;
                JobState::Done
            }
            "failed" => {
                t.failed += 1;
                JobState::Failed
            }
            _ => {
                t.cancelled += 1;
                JobState::Cancelled
            }
        };
        shared
            .cfg
            .telemetry
            .gauge_set(&format!("serve/job/{id}/state"), final_state.gauge_code());
        if let Some(job) = t.jobs.get_mut(&id) {
            job.state = final_state;
            job.result = Some(result);
        }
        maybe_stop(shared, &mut t);
        shared.publish_gauges(&t);
        drop(t);
        shared.done_cv.notify_all();
    }
}

/// Builds the isolated per-job telemetry handle: a trace sink under the
/// daemon's trace dir when configured, metrics-only otherwise (the
/// counter summary in [`JobResult`] needs a registry either way).
/// Returns the handle plus the trace file name (relative to the trace
/// dir) when a sink was installed.
fn job_telemetry(shared: &Arc<Shared>, id: &str) -> (Telemetry, Option<String>) {
    if let Some(dir) = &shared.cfg.trace_dir {
        let path = Path::new(dir).join(format!("{id}.trace.jsonl"));
        match Telemetry::to_file(&path) {
            Ok(tel) => return (tel, Some(path.display().to_string())),
            Err(e) => eprintln!(
                "warning: cannot create trace {}: {e}; job runs metrics-only",
                path.display()
            ),
        }
    }
    (Telemetry::with_metrics(), None)
}

/// Folds the job's isolated registry delta into the wire-facing counter
/// summary. Only top-level phase histograms contribute to `phase_seconds`
/// (nested spans are already included in their root's time).
fn job_counters(before: &Option<Snapshot>, after: &Option<Snapshot>) -> JobCounters {
    let (Some(before), Some(after)) = (before, after) else {
        return JobCounters::default();
    };
    let d = after.delta(before);
    let c = |name: &str| d.counters.get(name).copied().unwrap_or(0);
    JobCounters {
        trials_valid: c("measure/valid"),
        trials_failed: c("measure/failed"),
        measure_cache_hits: c("measure/cache_hits"),
        measure_cache_misses: c("measure/cache_misses"),
        feature_cache_hits: c("features/cache_hits"),
        score_cache_hits: c("model/score_cache_hits"),
        fault_retries: c("measure/retries"),
        fault_gave_up: c("measure/gave_up"),
        quarantined: c("search/quarantined"),
        surrogate_skipped: c("surrogate/skipped"),
        phase_seconds: d
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let name = k.strip_prefix("phase/")?;
                (!name.contains('/')).then(|| (name.to_string(), h.sum))
            })
            .collect(),
    }
}

/// Executes one job exactly as `ansor-tune` would, plus shared caches.
/// Returns the wire-facing result, the full tuning log (for the store;
/// the log stays off the wire — clients get its fingerprint and count),
/// and the job's trace file name when tracing is enabled.
///
/// The session runs under its *own* [`Telemetry`] — registry isolated
/// per job, trace sink per job — so concurrent jobs never interleave
/// counters and the per-job trace matches a cold `ansor-tune --trace` of
/// the same seed byte for byte. The daemon's shared handle only carries
/// `serve/*` operational gauges.
fn run_job(
    shared: &Arc<Shared>,
    id: &str,
    spec: &JobSpec,
    cancel: &Arc<AtomicBool>,
    progress: &Arc<Mutex<Progress>>,
    queue_wait_ms: f64,
) -> (JobResult, Vec<ansor_core::TuningRecordLog>, Option<String>) {
    let started = Instant::now();
    let fail = |error: String| {
        (
            JobResult {
                job: id.to_string(),
                task: spec.task_name(),
                state: "failed".into(),
                trials: 0,
                best_seconds: None,
                best_gflops: None,
                best_signature: None,
                log_records: 0,
                log_fingerprint: 0,
                warm: CacheDeltas::default(),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                queue_wait_ms,
                counters: JobCounters::default(),
                error: Some(error),
            },
            Vec::new(),
            None,
        )
    };
    let Some(dag) = build_case(&spec.op, spec.shape, spec.batch) else {
        return fail(format!("unknown case {:?} shape {}", spec.op, spec.shape));
    };
    let Some(target) = HardwareTarget::by_name(&spec.target) else {
        return fail(format!("unknown target {:?}", spec.target));
    };
    // Per-job overrides. The fault spec feeds the fingerprint and class
    // key, so overridden jobs occupy their own warm-store class; the
    // thread count is process-global and perf-only (see `ServeConfig`).
    let faults = spec.faults.as_deref().unwrap_or(&shared.cfg.faults);
    let fault_plan = match spec.faults.as_deref().map(hwsim::FaultPlan::parse) {
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => return fail(format!("bad fault spec: {e}")),
        None => None,
    };
    ansor_runtime::set_threads(spec.threads.unwrap_or(shared.cfg.threads));
    let transfer = spec.transfer == Some(true);
    let prerank_keep = spec
        .prerank_keep
        .or_else(|| transfer.then_some(DEFAULT_TRANSFER_PRERANK_KEEP));
    let (job_tel, trace_file) = job_telemetry(shared, id);
    let shared_tel = shared.cfg.telemetry.clone();
    let task = SearchTask::new(spec.task_name(), dag.clone(), target.clone());
    let options = TuningOptions {
        num_measure_trials: spec.trials,
        seed: spec.seed,
        prerank_keep,
        telemetry: job_tel.clone(),
        ..Default::default()
    };
    let mut measurer = Measurer::new(target);
    measurer.set_telemetry(job_tel.clone());
    if let Some(plan) = fault_plan {
        measurer.set_fault_plan(Some(plan));
    }
    let mut session = TuningSession::new(task, options, measurer, spec.fingerprint(faults));

    let class = spec.class_key(faults);
    session.share_measure_cache(shared.store.measure_cache(&class));
    session.share_feature_cache(shared.store.feature_cache());
    if spec.warm_start == Some(true) {
        let records = shared.store.records_for(&class);
        session.warm_start(&records);
    }
    if transfer {
        // Cross-class transfer: start from the store-wide surrogate
        // (trained on every completed job, whatever its class key) so the
        // prerank stage is informed from trial one.
        session.install_surrogate(shared.store.surrogate());
    }

    let before = session.cache_stats();
    let tel_before = job_tel.live_snapshot();
    let flops = dag.flop_count();
    let legacy_gauge = format!("serve/session/{id}/trials");
    let gflops_gauge = format!("serve/job/{id}/best_gflops");
    let mut last_round = 0u64;
    session.run(|s| {
        let p = {
            let mut p = progress.lock().expect("progress lock poisoned");
            p.rounds = s.rounds();
            p.trials = s.trials();
            p.best_seconds = s.best_seconds().is_finite().then(|| s.best_seconds());
            *p
        };
        shared_tel.gauge_set(&legacy_gauge, p.trials as f64);
        shared.publish_job_gauges(id, JobState::Running, &p, spec.trials as u64);
        if let Some(best) = p.best_seconds {
            shared_tel.gauge_set(&gflops_gauge, flops / best / 1e9);
        }
        if p.rounds > last_round {
            last_round = p.rounds;
            shared.journal_append(&JournalEvent::Round {
                job: id.to_string(),
                round: p.rounds,
                trials: p.trials,
                best_seconds: p.best_seconds,
            });
        }
        !cancel.load(Ordering::Relaxed)
    });
    let delta = session.cache_stats().since(&before);
    let warm = CacheDeltas {
        measure_hits: delta.measure_hits,
        measure_misses: delta.measure_misses,
        feature_hits: delta.feature_hits,
        feature_misses: delta.feature_misses,
        score_hits: delta.score_hits,
        score_misses: delta.score_misses,
    };
    let counters = job_counters(&tel_before, &job_tel.live_snapshot());
    // Final PhaseProfile event + sink flush; the canonical event stream
    // (which skips PhaseProfile) is unaffected.
    job_tel.flush();
    let was_cancelled = cancel.load(Ordering::Relaxed);

    let final_progress = {
        let mut p = progress.lock().expect("progress lock poisoned");
        p.rounds = session.rounds();
        p.trials = session.trials();
        p.best_seconds = session
            .best_seconds()
            .is_finite()
            .then(|| session.best_seconds());
        *p
    };
    shared_tel.gauge_set(&legacy_gauge, final_progress.trials as f64);
    let final_state = if was_cancelled {
        JobState::Cancelled
    } else {
        JobState::Done
    };
    shared.publish_job_gauges(id, final_state, &final_progress, spec.trials as u64);

    let best_seconds = session.best_seconds();
    let finite_best = best_seconds.is_finite().then_some(best_seconds);
    let log = session.log().to_vec();
    let result = JobResult {
        job: id.to_string(),
        task: spec.task_name(),
        state: if was_cancelled { "cancelled" } else { "done" }.into(),
        trials: session.trials(),
        best_seconds: finite_best,
        best_gflops: finite_best.map(|s| flops / s / 1e9),
        best_signature: session.best_individual().map(|i| i.state.signature()),
        log_records: log.len() as u64,
        log_fingerprint: log_fingerprint(&log),
        warm,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        queue_wait_ms,
        counters,
        error: None,
    };
    (result, log, trace_file)
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        {
            let t = shared.jobs.lock().expect("job table lock poisoned");
            if t.stop {
                return;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(&sh, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // One request/response per round trip: latency matters, Nagle hurts.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_line(&mut reader) {
            Ok(Some(line)) => line,
            Ok(None) => return, // clean EOF or mid-write disconnect
            Err(e) => {
                // Oversized or non-UTF-8 line: tell the client, then hang
                // up — the stream is no longer line-synchronized.
                let _ = write_line(&mut writer, &Response::failure(None, e.to_string()));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let req = match decode_request(&line) {
            Ok(r) => r,
            Err(e) => {
                // Best-effort id recovery so the client can correlate.
                let id = serde_json::from_str::<serde::Value>(&line)
                    .ok()
                    .and_then(|v| match v {
                        serde::Value::Object(m) => m.get("id").cloned(),
                        _ => None,
                    })
                    .and_then(|v| u64::from_value(&v).ok());
                if write_line(&mut writer, &Response::failure(id, e)).is_err() {
                    return;
                }
                continue;
            }
        };
        let resp = dispatch(shared, &req);
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if req.method == "shutdown" {
            return;
        }
    }
}

fn dispatch(shared: &Arc<Shared>, req: &Request) -> Response {
    let started = Instant::now();
    let resp = match req.method.as_str() {
        "submit" => handle_submit(shared, req),
        "status" => handle_status(shared, req),
        "result" => handle_result(shared, req, false),
        "wait" => handle_result(shared, req, true),
        "cancel" => handle_cancel(shared, req),
        "trace" => handle_trace(shared, req),
        "stats" => handle_stats(shared, req),
        "shutdown" => {
            initiate_shutdown(shared, req.drain.unwrap_or(true));
            Response::success(req.id)
        }
        other => Response::failure(req.id, format!("unknown method {other:?}")),
    };
    // Per-method request latency. Unknown methods share one bucket so a
    // misbehaving client can't mint unbounded histogram names.
    let method = match req.method.as_str() {
        m @ ("submit" | "status" | "result" | "wait" | "cancel" | "trace" | "stats"
        | "shutdown") => m,
        _ => "unknown",
    };
    shared.cfg.telemetry.observe(
        &format!("serve/request_ms/{method}"),
        started.elapsed().as_secs_f64() * 1e3,
    );
    resp
}

/// Serves one chunk of a finished job's trace file. Chunks are raw byte
/// runs (cut at UTF-8 boundaries) so the client reassembles the exact
/// file; each response line stays under the protocol's line cap.
fn handle_trace(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "trace requires a job id");
    };
    {
        let t = shared.jobs.lock().expect("job table lock poisoned");
        match t.jobs.get(id) {
            None => return Response::failure(req.id, format!("no such job {id:?}")),
            Some(job) if !job.state.finished() => {
                return Response::failure(
                    req.id,
                    format!("job {id} not finished (state {})", job.state.as_str()),
                );
            }
            Some(_) => {}
        }
    }
    let Some(dir) = &shared.cfg.trace_dir else {
        return Response::failure(
            req.id,
            "server was started without --trace-dir; no per-job traces exist",
        );
    };
    let path = Path::new(dir).join(format!("{id}.trace.jsonl"));
    let data = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            return Response::failure(req.id, format!("read trace {}: {e}", path.display()));
        }
    };
    let offset = req.offset.unwrap_or(0) as usize;
    if offset > data.len() || !data.is_char_boundary(offset) {
        return Response::failure(
            req.id,
            format!("offset {offset} invalid for trace of {} bytes", data.len()),
        );
    }
    let mut end = (offset + TRACE_CHUNK_BYTES).min(data.len());
    while end < data.len() && !data.is_char_boundary(end) {
        end -= 1;
    }
    let mut resp = Response::success(req.id);
    resp.trace = Some(TraceChunk {
        job: id.clone(),
        offset: offset as u64,
        data: data[offset..end].to_string(),
        eof: end == data.len(),
    });
    resp
}

fn handle_submit(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(spec) = &req.spec else {
        return Response::failure(req.id, "submit requires a job spec");
    };
    // Validate eagerly so a typo fails at submit, not minutes later.
    if build_case(&spec.op, spec.shape, spec.batch).is_none() {
        return Response::failure(
            req.id,
            format!("unknown case {:?} shape {}", spec.op, spec.shape),
        );
    }
    if HardwareTarget::by_name(&spec.target).is_none() {
        return Response::failure(req.id, format!("unknown target {:?}", spec.target));
    }
    if spec.trials == 0 {
        return Response::failure(req.id, "trials must be positive");
    }
    if let Some(f) = &spec.faults {
        if let Err(e) = hwsim::FaultPlan::parse(f) {
            return Response::failure(req.id, format!("bad fault spec: {e}"));
        }
    }
    if let Some(k) = spec.prerank_keep {
        if !(k > 0.0 && k <= 1.0) {
            return Response::failure(req.id, "prerank_keep must be in (0, 1]");
        }
    }
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    if t.draining {
        return Response::failure(req.id, "server is draining; not accepting jobs");
    }
    if t.queue.len() >= shared.cfg.queue_cap {
        return Response::failure(
            req.id,
            format!("queue full ({} jobs queued)", t.queue.len()),
        );
    }
    t.next_id += 1;
    let id = format!("job-{}", t.next_id);
    t.jobs.insert(
        id.clone(),
        Job {
            spec: spec.clone(),
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            progress: Arc::new(Mutex::new(Progress::default())),
            result: None,
            submitted: Instant::now(),
        },
    );
    t.queue.push_back(id.clone());
    t.submitted += 1;
    shared.publish_gauges(&t);
    shared.publish_job_gauges(
        &id,
        JobState::Queued,
        &Progress::default(),
        spec.trials as u64,
    );
    shared.journal_append(&JournalEvent::Submit {
        job: id.clone(),
        task: spec.task_name(),
        op: spec.op.clone(),
        shape: spec.shape as u64,
        batch: spec.batch,
        target: spec.target.clone(),
        trials: spec.trials as u64,
        seed: spec.seed,
    });
    drop(t);
    shared.work_cv.notify_one();
    let mut resp = Response::success(req.id);
    resp.job = Some(id);
    resp
}

fn job_status(id: &str, job: &Job) -> JobStatus {
    let p = *job.progress.lock().expect("progress lock poisoned");
    JobStatus {
        job: id.to_string(),
        state: job.state.as_str().into(),
        rounds: p.rounds,
        trials: p.trials,
        trials_budget: job.spec.trials as u64,
        best_seconds: p.best_seconds,
    }
}

fn handle_status(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "status requires a job id");
    };
    let t = shared.jobs.lock().expect("job table lock poisoned");
    match t.jobs.get(id) {
        Some(job) => {
            let mut resp = Response::success(req.id);
            resp.status = Some(job_status(id, job));
            resp
        }
        None => Response::failure(req.id, format!("no such job {id:?}")),
    }
}

fn handle_result(shared: &Arc<Shared>, req: &Request, block: bool) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "result requires a job id");
    };
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    loop {
        match t.jobs.get(id) {
            None => return Response::failure(req.id, format!("no such job {id:?}")),
            Some(job) if job.state.finished() => {
                let mut resp = Response::success(req.id);
                resp.result = job.result.clone();
                return resp;
            }
            Some(job) => {
                if !block {
                    return Response::failure(
                        req.id,
                        format!("job {id} not finished (state {})", job.state.as_str()),
                    );
                }
            }
        }
        t = shared.done_cv.wait(t).expect("job table lock poisoned");
    }
}

fn handle_cancel(shared: &Arc<Shared>, req: &Request) -> Response {
    let Some(id) = &req.job else {
        return Response::failure(req.id, "cancel requires a job id");
    };
    let mut t = shared.jobs.lock().expect("job table lock poisoned");
    let (was_queued, spec, queue_wait_ms) = match t.jobs.get(id) {
        Some(job) => {
            job.cancel.store(true, Ordering::Relaxed);
            (
                job.state == JobState::Queued,
                job.spec.clone(),
                job.submitted.elapsed().as_secs_f64() * 1e3,
            )
        }
        None => return Response::failure(req.id, format!("no such job {id:?}")),
    };
    if was_queued {
        t.queue.retain(|q| q != id);
        let job = t.jobs.get_mut(id).expect("job exists");
        job.state = JobState::Cancelled;
        job.result = Some(cancelled_result(id, &spec, queue_wait_ms));
        t.cancelled += 1;
        journal_queued_cancel(shared, id, queue_wait_ms);
        maybe_stop(shared, &mut t);
        shared.publish_gauges(&t);
        drop(t);
        shared.done_cv.notify_all();
    }
    Response::success(req.id)
}

fn handle_stats(shared: &Arc<Shared>, req: &Request) -> Response {
    let t = shared.jobs.lock().expect("job table lock poisoned");
    let mut resp = Response::success(req.id);
    resp.stats = Some(ServerStats {
        protocol_version: PROTOCOL_VERSION,
        jobs_submitted: t.submitted,
        jobs_queued: t.queue.len() as u64,
        jobs_active: t.active as u64,
        jobs_done: t.done,
        jobs_failed: t.failed,
        jobs_cancelled: t.cancelled,
        queue_cap: shared.cfg.queue_cap as u64,
        workers: shared.cfg.workers.max(1) as u64,
        store_entries: shared.store.entry_count() as u64,
        store_records: shared.store.record_count() as u64,
        store_bytes: shared.store.resident_bytes(),
        store_evictions: shared.store.eviction_count(),
        surrogate_updates: shared.store.surrogate_updates(),
        draining: t.draining,
        trials_total: t.trials_total,
    });
    resp
}
