//! The daemon's job journal: an append-only JSONL flight recorder.
//!
//! One [`JournalEvent`] per line, written next to the warm store by
//! default (`journal.jsonl`). The journal spans daemon restarts: on
//! startup the existing file is replayed to (a) mark any job that was
//! submitted but never finished as [`JournalEvent::Interrupted`] — a
//! crash must not leave phantom "running" entries — and (b) seed the
//! job-id counter past every id ever issued, so restarted daemons never
//! reuse an id the journal already knows.
//!
//! Appends are atomic at the line level: the file is opened in append
//! mode and each event is written as a single `write_all` of the whole
//! line (POSIX appends of one buffer do not interleave), then flushed,
//! so a reader — or a replay after a crash — sees only whole lines plus
//! at most one torn tail, which replay skips.
//!
//! `trace-report --serve <journal>` builds its per-job table and
//! fleet-wide efficacy aggregation from this file; see `docs/SERVING.md`
//! for the event reference.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::proto::CacheDeltas;

/// One journal line. Externally tagged JSON, one object per line —
/// `{"Submit":{"job":"job-1",...}}` — mirroring the trace-event encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// The daemon (re)started and owns the journal from here on.
    DaemonStart {
        /// Session worker threads.
        workers: u64,
        /// Bounded queue capacity.
        queue_cap: u64,
    },
    /// A job was accepted and queued.
    Submit {
        /// Job id (`job-N`).
        job: String,
        /// Canonical task name.
        task: String,
        /// Operator class name.
        op: String,
        /// Shape index.
        shape: u64,
        /// Batch size.
        batch: i64,
        /// Target name.
        target: String,
        /// Measurement-trial budget.
        trials: u64,
        /// Search RNG seed.
        seed: u64,
    },
    /// A worker claimed the job and started its session.
    Start {
        /// Job id.
        job: String,
        /// Milliseconds the job spent queued before a worker claimed it.
        queue_wait_ms: f64,
    },
    /// Round-level progress of a running job.
    Round {
        /// Job id.
        job: String,
        /// Tuning rounds completed.
        round: u64,
        /// Measurement trials consumed.
        trials: u64,
        /// Best measured seconds so far, if any.
        best_seconds: Option<f64>,
    },
    /// The job settled (`done`, `failed`, or `cancelled`).
    Finish {
        /// Job id.
        job: String,
        /// `done`, `failed`, or `cancelled`.
        outcome: String,
        /// Milliseconds the job spent queued.
        queue_wait_ms: f64,
        /// Wall-clock milliseconds the job spent executing.
        wall_ms: f64,
        /// Measurement trials consumed.
        trials: u64,
        /// Best throughput in GFLOP/s, if any valid measurement landed.
        best_gflops: Option<f64>,
        /// Shared-cache traffic during the job.
        cache: CacheDeltas,
        /// Deduplicated records the warm store absorbed from this job.
        absorbed_records: u64,
        /// Per-job trace file as the daemon wrote it (`--trace-dir`
        /// joined with `<job>.trace.jsonl`), when tracing was enabled.
        trace: Option<String>,
    },
    /// Replay found the job submitted but never finished: the daemon
    /// died (or was killed) while the job was queued or running.
    Interrupted {
        /// Job id.
        job: String,
    },
}

impl JournalEvent {
    /// The job id this event refers to (`None` for daemon-level events).
    pub fn job_id(&self) -> Option<&str> {
        match self {
            JournalEvent::DaemonStart { .. } => None,
            JournalEvent::Submit { job, .. }
            | JournalEvent::Start { job, .. }
            | JournalEvent::Round { job, .. }
            | JournalEvent::Finish { job, .. }
            | JournalEvent::Interrupted { job } => Some(job),
        }
    }
}

/// What [`JobJournal::open`] found in a pre-existing journal file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JournalReplay {
    /// Events replayed (before any interruption markers were appended).
    pub events: usize,
    /// Jobs finished (any outcome) across all prior daemon epochs.
    pub finished: usize,
    /// Jobs marked interrupted by *this* replay: submitted in a prior
    /// epoch but never finished.
    pub interrupted: Vec<String>,
    /// Highest numeric suffix of any `job-N` id seen; the daemon seeds
    /// its id counter past this so restarts never reuse an id.
    pub max_job_id: u64,
    /// Torn or malformed lines skipped during replay.
    pub skipped: usize,
}

/// An open journal: an append-only handle plus the replay summary.
#[derive(Debug)]
pub struct JobJournal {
    file: File,
}

impl JobJournal {
    /// Opens (or creates) the journal at `path`, replays any existing
    /// events, and appends an [`JournalEvent::Interrupted`] marker for
    /// every job a prior epoch left unfinished. The caller appends its
    /// own [`JournalEvent::DaemonStart`] after the markers.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(JobJournal, JournalReplay)> {
        let path = path.as_ref();
        let (events, skipped) = match File::open(path) {
            Ok(f) => read_events(BufReader::new(f)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), 0),
            Err(e) => return Err(e),
        };
        let mut replay = JournalReplay {
            events: events.len(),
            skipped,
            ..JournalReplay::default()
        };
        let mut open_jobs: Vec<String> = Vec::new();
        for ev in &events {
            match ev {
                JournalEvent::Submit { job, .. } => open_jobs.push(job.clone()),
                JournalEvent::Finish { job, .. } | JournalEvent::Interrupted { job } => {
                    if let JournalEvent::Finish { .. } = ev {
                        replay.finished += 1;
                    }
                    open_jobs.retain(|j| j != job);
                }
                _ => {}
            }
            if let Some(id) = ev.job_id() {
                if let Some(n) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) {
                    replay.max_job_id = replay.max_job_id.max(n);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut journal = JobJournal { file };
        for job in open_jobs {
            journal.append(&JournalEvent::Interrupted { job: job.clone() })?;
            replay.interrupted.push(job);
        }
        Ok((journal, replay))
    }

    /// Appends one event as a single whole-line write, then flushes.
    pub fn append(&mut self, event: &JournalEvent) -> std::io::Result<()> {
        let mut line = serde_json::to_string(event).expect("journal events serialize");
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// Parses journal events from a reader, skipping torn or malformed
/// lines. Returns `(events, skipped)`.
pub fn read_events<R: BufRead>(reader: R) -> (Vec<JournalEvent>, usize) {
    let mut events = Vec::new();
    let mut skipped = 0;
    for line in reader.lines() {
        let Ok(line) = line else {
            skipped += 1;
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalEvent>(&line) {
            Ok(ev) => events.push(ev),
            Err(_) => skipped += 1,
        }
    }
    (events, skipped)
}

/// Reads a journal file (see [`read_events`]). A missing file is an
/// error — the caller wants to know the daemon never wrote one.
pub fn read_journal(path: impl AsRef<Path>) -> std::io::Result<(Vec<JournalEvent>, usize)> {
    let f = File::open(path)?;
    Ok(read_events(BufReader::new(f)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ansor-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    fn submit(job: &str) -> JournalEvent {
        JournalEvent::Submit {
            job: job.into(),
            task: "GMM:s0b1".into(),
            op: "GMM".into(),
            shape: 0,
            batch: 1,
            target: "intel".into(),
            trials: 64,
            seed: 7,
        }
    }

    fn finish(job: &str) -> JournalEvent {
        JournalEvent::Finish {
            job: job.into(),
            outcome: "done".into(),
            queue_wait_ms: 1.5,
            wall_ms: 100.0,
            trials: 64,
            best_gflops: Some(10.0),
            cache: CacheDeltas::default(),
            absorbed_records: 12,
            trace: Some(format!("{job}.trace.jsonl")),
        }
    }

    #[test]
    fn events_round_trip_and_carry_job_ids() {
        for ev in [
            JournalEvent::DaemonStart {
                workers: 2,
                queue_cap: 64,
            },
            submit("job-3"),
            JournalEvent::Start {
                job: "job-3".into(),
                queue_wait_ms: 0.5,
            },
            JournalEvent::Round {
                job: "job-3".into(),
                round: 1,
                trials: 8,
                best_seconds: None,
            },
            finish("job-3"),
            JournalEvent::Interrupted {
                job: "job-3".into(),
            },
        ] {
            let line = serde_json::to_string(&ev).unwrap();
            let back: JournalEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, ev);
        }
        assert_eq!(
            JournalEvent::DaemonStart {
                workers: 1,
                queue_cap: 1
            }
            .job_id(),
            None
        );
        assert_eq!(submit("job-9").job_id(), Some("job-9"));
    }

    #[test]
    fn open_on_a_fresh_path_starts_empty() {
        let path = temp_path("fresh");
        let _ = std::fs::remove_file(&path);
        let (mut j, replay) = JobJournal::open(&path).unwrap();
        assert_eq!(replay, JournalReplay::default());
        j.append(&submit("job-1")).unwrap();
        j.append(&finish("job-1")).unwrap();
        let (events, skipped) = read_journal(&path).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_marks_unfinished_jobs_interrupted() {
        let path = temp_path("interrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&JournalEvent::DaemonStart {
                workers: 2,
                queue_cap: 64,
            })
            .unwrap();
            j.append(&submit("job-1")).unwrap();
            j.append(&finish("job-1")).unwrap();
            j.append(&submit("job-2")).unwrap();
            j.append(&JournalEvent::Start {
                job: "job-2".into(),
                queue_wait_ms: 0.1,
            })
            .unwrap();
            // Daemon "dies" here: job-2 never finishes.
        }
        let (_j, replay) = JobJournal::open(&path).unwrap();
        assert_eq!(replay.interrupted, vec!["job-2".to_string()]);
        assert_eq!(replay.finished, 1);
        assert_eq!(replay.max_job_id, 2);
        let (events, _) = read_journal(&path).unwrap();
        assert_eq!(
            events.last(),
            Some(&JournalEvent::Interrupted {
                job: "job-2".into()
            })
        );
        // A third open finds nothing left dangling.
        let (_j2, replay2) = JobJournal::open(&path).unwrap();
        assert!(replay2.interrupted.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_lines_are_skipped_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&submit("job-1")).unwrap();
        }
        // Simulate a torn final line from a crash mid-write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"Finish\":{\"job\":\"job-1\",\"outc")
                .unwrap();
        }
        let (_j, replay) = JobJournal::open(&path).unwrap();
        assert_eq!(replay.skipped, 1);
        assert_eq!(replay.interrupted, vec!["job-1".to_string()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn max_job_id_survives_restart() {
        let path = temp_path("maxid");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = JobJournal::open(&path).unwrap();
            j.append(&submit("job-41")).unwrap();
            j.append(&finish("job-41")).unwrap();
        }
        let (_j, replay) = JobJournal::open(&path).unwrap();
        assert_eq!(replay.max_job_id, 41);
        std::fs::remove_file(&path).unwrap();
    }
}
