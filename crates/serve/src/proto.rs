//! The `ansor-serve` wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line, echoing the request's `id`. Lines are capped at
//! [`MAX_LINE_BYTES`]; a connection sending a longer line is answered with
//! an error and closed (a client should never need one — job specs are a
//! few hundred bytes). Malformed JSON and unknown methods produce `ok:
//! false` error responses rather than dropped connections, so a client can
//! always correlate failures. See `docs/SERVING.md` for the full protocol
//! reference.

use std::collections::BTreeMap;
use std::io::{BufRead, Read, Write};

use ansor_core::{single_fingerprint, single_task_name};
use serde::{Deserialize, Serialize};

/// Protocol version, reported by `stats`. Bump on incompatible changes.
pub const PROTOCOL_VERSION: u64 = 1;

/// Maximum accepted request/response line length, newline included.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A job submission: which workload to tune, on what target, with what
/// budget and seed. Mirrors `ansor-tune`'s single-operator flags — a job
/// `{op, shape, batch, target, trials, seed}` is bit-identical to
/// `ansor-tune --op .. --shape .. --batch .. --target .. --trials ..
/// --seed ..` run cold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Operator class name (`GMM`, `C2D`, … — see `ansor-tune --list`).
    pub op: String,
    /// Shape index within the operator class.
    pub shape: usize,
    /// Batch size.
    pub batch: i64,
    /// Target name (`intel`, `intel-avx512`, `arm`, `gpu`).
    pub target: String,
    /// Measurement-trial budget.
    pub trials: usize,
    /// Search RNG seed.
    pub seed: u64,
    /// Opt-in warm start from the store's tuning records. Off the
    /// bit-identity path: a warm-started search legitimately differs from
    /// a cold one (it begins from prior measurements, per the transfer
    /// argument of Chen et al.). Defaults to off.
    pub warm_start: Option<bool>,
    /// Per-job runtime thread-count override (0 = auto). Determinism is
    /// thread-count-transparent, so this only affects wall-clock speed; the
    /// setting is process-global for the duration of the job, so under
    /// concurrent jobs the last-started job's value wins (perf-only
    /// effect). Defaults to the server's configured thread count.
    pub threads: Option<usize>,
    /// Per-job fault-plan override (`"none"`, `"default"`, or `"k=v,..."`
    /// — same grammar as `ansor-tune --faults`). Feeds the job's
    /// fingerprint and class key, so overridden jobs occupy their own
    /// warm-store class. Defaults to the server's fault spec.
    pub faults: Option<String>,
    /// Surrogate prerank fraction for this job (see
    /// `TuningOptions::prerank_keep`). Defaults to off, or to 0.25 when
    /// `transfer` is set without an explicit fraction.
    pub prerank_keep: Option<f64>,
    /// Opt-in cross-class transfer: install the store-wide step-sequence
    /// surrogate (trained on every completed job, across class keys) and
    /// enable prerank. Off the bit-identity path, like `warm_start` — but
    /// unlike `warm_start` it helps even when no store entry matches this
    /// job's class key. Defaults to off.
    pub transfer: Option<bool>,
}

impl JobSpec {
    /// Canonical task name (shared with `ansor-tune`).
    pub fn task_name(&self) -> String {
        single_task_name(&self.op, self.shape, self.batch)
    }

    /// Invocation fingerprint under the server's fault spec (shared with
    /// `ansor-tune` checkpoints).
    pub fn fingerprint(&self, faults: &str) -> String {
        single_fingerprint(
            &self.op,
            self.shape,
            self.batch,
            &self.target,
            faults,
            self.seed,
        )
    }

    /// Warm-store class key: everything that determines a measurement
    /// result *except* the seed, so jobs with different seeds on the same
    /// workload/target/fault configuration share one measurement cache.
    pub fn class_key(&self, faults: &str) -> String {
        format!(
            "{}:s{}:b{}|target={}|faults={}",
            self.op, self.shape, self.batch, self.target, faults
        )
    }
}

/// One request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Method name: `submit`, `status`, `result`, `wait`, `cancel`,
    /// `trace`, `stats`, or `shutdown`.
    pub method: String,
    /// Job id operand (`status`/`result`/`wait`/`cancel`/`trace`).
    pub job: Option<String>,
    /// Job spec operand (`submit`).
    pub spec: Option<JobSpec>,
    /// Whether `shutdown` drains queued jobs first (default `true`);
    /// `false` cancels queued and running jobs immediately.
    pub drain: Option<bool>,
    /// Byte offset into the job's trace file (`trace`; default 0). A
    /// client pulls a large trace by re-requesting with the offset
    /// advanced past each chunk until `eof`.
    pub offset: Option<u64>,
}

/// Point-in-time view of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Job id.
    pub job: String,
    /// `queued`, `running`, `done`, `failed`, or `cancelled`.
    pub state: String,
    /// Tuning rounds completed.
    pub rounds: u64,
    /// Measurement trials consumed.
    pub trials: u64,
    /// Trial budget.
    pub trials_budget: u64,
    /// Best measured seconds so far (`None` before any valid result).
    pub best_seconds: Option<f64>,
}

/// Shared-cache traffic observed during one job (hit/miss deltas of the
/// warm store's caches over the job's execution window). Nonzero hits on a
/// resubmitted job are the "warm store worked" signal. Under concurrent
/// jobs the windows overlap, so deltas are attributed approximately; the
/// totals across jobs are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CacheDeltas {
    /// Measurement result cache hits.
    pub measure_hits: u64,
    /// Measurement result cache misses.
    pub measure_misses: u64,
    /// Featurization cache hits.
    pub feature_hits: u64,
    /// Featurization cache misses.
    pub feature_misses: u64,
    /// Model score cache hits (always per-session; scores depend on the
    /// session's own model).
    pub score_hits: u64,
    /// Model score cache misses.
    pub score_misses: u64,
}

/// Per-job counter deltas, computed from the job's own isolated
/// telemetry registry (`Snapshot::delta` over the session window). Unlike
/// [`CacheDeltas`] — which reads the session's cache statistics — these
/// come from the telemetry pipeline itself, so they are exact per job
/// even under concurrent sessions: each job has its own registry.
///
/// All fields default so results from older servers still parse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobCounters {
    /// Valid measurements (`measure/valid`).
    #[serde(default)]
    pub trials_valid: u64,
    /// Failed measurements (`measure/failed`).
    #[serde(default)]
    pub trials_failed: u64,
    /// Measurement-cache hits (`measure/cache_hits`).
    #[serde(default)]
    pub measure_cache_hits: u64,
    /// Measurement-cache misses (`measure/cache_misses`).
    #[serde(default)]
    pub measure_cache_misses: u64,
    /// Featurization-cache hits (`features/cache_hits`).
    #[serde(default)]
    pub feature_cache_hits: u64,
    /// Model score-cache hits (`model/score_cache_hits`).
    #[serde(default)]
    pub score_cache_hits: u64,
    /// Fault-induced measurement retries (`measure/retries`).
    #[serde(default)]
    pub fault_retries: u64,
    /// Measurements abandoned after exhausting retries
    /// (`measure/gave_up`).
    #[serde(default)]
    pub fault_gave_up: u64,
    /// Programs quarantined by the search policy (`search/quarantined`).
    #[serde(default)]
    pub quarantined: u64,
    /// Candidates skipped by the surrogate prerank (`surrogate/skipped`).
    #[serde(default)]
    pub surrogate_skipped: u64,
    /// Seconds spent per top-level phase (`phase/<name>` histogram sums;
    /// nested phases fold into their root).
    #[serde(default)]
    pub phase_seconds: BTreeMap<String, f64>,
}

/// Final outcome of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Job id.
    pub job: String,
    /// Canonical task name.
    pub task: String,
    /// `done`, `failed`, or `cancelled`.
    pub state: String,
    /// Measurement trials consumed.
    pub trials: u64,
    /// Best measured seconds (`None` when no valid measurement).
    pub best_seconds: Option<f64>,
    /// Best throughput in GFLOP/s.
    pub best_gflops: Option<f64>,
    /// `State::signature()` of the best program (bit-identity probe).
    pub best_signature: Option<u64>,
    /// Number of per-trial tuning records produced.
    pub log_records: u64,
    /// Stable fingerprint of the full record log
    /// (`ansor_core::log_fingerprint`); equal fingerprints mean
    /// bit-identical tuning runs. `ansor-tune` prints the same value.
    pub log_fingerprint: u64,
    /// Shared-cache traffic during this job.
    pub warm: CacheDeltas,
    /// Wall-clock milliseconds the job spent executing (not queued).
    /// Nondeterministic; excluded from bit-identity comparisons.
    pub wall_ms: f64,
    /// Milliseconds the job spent queued before a worker claimed it.
    /// Nondeterministic; excluded from bit-identity comparisons.
    /// Defaulted so results from older servers still parse.
    #[serde(default)]
    pub queue_wait_ms: f64,
    /// Per-job counter deltas from the job's isolated telemetry registry.
    /// Defaulted so results from older servers still parse.
    #[serde(default)]
    pub counters: JobCounters,
    /// Failure reason when `state` is `failed`.
    pub error: Option<String>,
}

/// Server-wide counters returned by `stats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Protocol version.
    pub protocol_version: u64,
    /// Jobs accepted over the server's lifetime.
    pub jobs_submitted: u64,
    /// Jobs currently queued.
    pub jobs_queued: u64,
    /// Jobs currently executing.
    pub jobs_active: u64,
    /// Jobs finished successfully.
    pub jobs_done: u64,
    /// Jobs that failed.
    pub jobs_failed: u64,
    /// Jobs cancelled.
    pub jobs_cancelled: u64,
    /// Bounded queue capacity (submits beyond it are rejected).
    pub queue_cap: u64,
    /// Session worker threads.
    pub workers: u64,
    /// Warm-store entries (workload/target/fault classes).
    pub store_entries: u64,
    /// Tuning records resident in the warm store.
    pub store_records: u64,
    /// Approximate serialized size of the warm store's entries, in bytes
    /// (what the compaction budget is enforced against).
    pub store_bytes: u64,
    /// Warm-store entries evicted by byte-budget compaction so far.
    pub store_evictions: u64,
    /// Training updates absorbed into the store-wide transfer surrogate.
    pub surrogate_updates: u64,
    /// Whether the server is draining (shutdown requested).
    pub draining: bool,
    /// Measurement trials consumed by all finished jobs; equals the sum
    /// of `JobResult::trials` across them (the per-job counters sum
    /// consistently with this total). Defaulted so stats from older
    /// servers still parse.
    #[serde(default)]
    pub trials_total: u64,
}

/// One chunk of a job's trace file (`trace`). Chunks are raw byte runs
/// of the JSONL trace, sized so the enclosing response line stays under
/// [`MAX_LINE_BYTES`] after JSON escaping; a client reassembles the file
/// by concatenating chunks in offset order until `eof`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceChunk {
    /// Job id the trace belongs to.
    pub job: String,
    /// Byte offset of this chunk within the trace file.
    pub offset: u64,
    /// Chunk contents (UTF-8; traces are JSONL).
    pub data: String,
    /// Whether this chunk reaches the end of the file.
    pub eof: bool,
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's `id`; `None` when the request line could not be
    /// parsed far enough to recover one.
    pub id: Option<u64>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Failure reason when `ok` is `false`.
    pub error: Option<String>,
    /// Job id (`submit`).
    pub job: Option<String>,
    /// Job status (`status`).
    pub status: Option<JobStatus>,
    /// Job result (`result`, `wait`).
    pub result: Option<JobResult>,
    /// Server stats (`stats`).
    pub stats: Option<ServerStats>,
    /// Trace chunk (`trace`). Defaulted so responses from older servers
    /// still parse.
    #[serde(default)]
    pub trace: Option<TraceChunk>,
}

impl Response {
    /// A bare success response.
    pub fn success(id: u64) -> Response {
        Response {
            id: Some(id),
            ok: true,
            error: None,
            job: None,
            status: None,
            result: None,
            stats: None,
            trace: None,
        }
    }

    /// An error response. `id` accepts both `u64` and `Option<u64>`.
    pub fn failure(id: impl Into<Option<u64>>, error: impl Into<String>) -> Response {
        Response {
            id: id.into(),
            ok: false,
            error: Some(error.into()),
            job: None,
            status: None,
            result: None,
            stats: None,
            trace: None,
        }
    }
}

/// Encodes a message as its single wire line (no trailing newline).
pub fn encode<T: Serialize>(msg: &T) -> String {
    serde_json::to_string(msg).expect("protocol messages serialize")
}

/// Writes one message line (JSON + `\n`) and flushes. The newline is
/// appended before the single `write_all` so the line leaves in one
/// segment (two small writes would trip Nagle + delayed-ACK and add tens
/// of milliseconds per request).
pub fn write_line<W: Write, T: Serialize>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let mut line = encode(msg);
    debug_assert!(line.len() < MAX_LINE_BYTES, "oversized outbound message");
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one protocol line. Returns:
///
/// - `Ok(Some(line))` — a complete line (newline stripped);
/// - `Ok(None)` — clean EOF, *or* EOF in the middle of a line (a client
///   that disconnected mid-write; the partial line is discarded, never
///   parsed);
/// - `Err(InvalidData)` — the line exceeds [`MAX_LINE_BYTES`] or is not
///   UTF-8.
pub fn read_line<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut limited = r.take((MAX_LINE_BYTES + 1) as u64);
    let n = limited.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > MAX_LINE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        // EOF mid-line: the peer vanished mid-write.
        return Ok(None);
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "request is not UTF-8"))
}

/// Parses a request line. The error string is safe to echo to the client.
pub fn decode_request(line: &str) -> Result<Request, String> {
    serde_json::from_str::<Request>(line).map_err(|e| format!("malformed request: {e:?}"))
}

/// Parses a response line (client side).
pub fn decode_response(line: &str) -> Result<Response, String> {
    serde_json::from_str::<Response>(line).map_err(|e| format!("malformed response: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            op: "GMM".into(),
            shape: 0,
            batch: 1,
            target: "intel".into(),
            trials: 64,
            seed: 7,
            warm_start: None,
            threads: None,
            faults: None,
            prerank_keep: None,
            transfer: None,
        }
    }

    #[test]
    fn legacy_spec_json_without_new_fields_parses() {
        // Specs written by pre-transfer clients omit the override fields.
        let line = r#"{"op":"GMM","shape":0,"batch":1,"target":"intel","trials":64,"seed":7}"#;
        let s: JobSpec = serde_json::from_str(line).unwrap();
        assert_eq!(s, spec());
    }

    #[test]
    fn request_round_trips() {
        let req = Request {
            id: 3,
            method: "submit".into(),
            job: None,
            spec: Some(spec()),
            drain: None,
            offset: None,
        };
        let line = encode(&req);
        assert_eq!(decode_request(&line).unwrap(), req);
    }

    #[test]
    fn legacy_result_json_without_counters_parses() {
        // Results written by pre-observability servers lack the per-job
        // counter block and queue-wait field.
        let line = r#"{"job":"job-1","task":"GMM:s0b1","state":"done","trials":64,
            "best_seconds":1e-3,"best_gflops":2.0,"best_signature":9,
            "log_records":64,"log_fingerprint":7,
            "warm":{"measure_hits":0,"measure_misses":0,"feature_hits":0,
                    "feature_misses":0,"score_hits":0,"score_misses":0},
            "wall_ms":10.0,"error":null}"#;
        let r: JobResult = serde_json::from_str(line).unwrap();
        assert_eq!(r.queue_wait_ms, 0.0);
        assert_eq!(r.counters, JobCounters::default());
    }

    #[test]
    fn trace_chunk_round_trips() {
        let chunk = TraceChunk {
            job: "job-2".into(),
            offset: 1024,
            data: "{\"seq\":0}\n".into(),
            eof: true,
        };
        let mut resp = Response::success(5);
        resp.trace = Some(chunk.clone());
        let line = encode(&resp);
        assert_eq!(decode_response(&line).unwrap().trace, Some(chunk));
    }

    #[test]
    fn spec_keys_match_ansor_tune_conventions() {
        let s = spec();
        assert_eq!(s.task_name(), "GMM:s0b1");
        assert_eq!(
            s.fingerprint("none"),
            "single:GMM:s0:b1:target=intel:faults=none:seed=7"
        );
        // Class key drops the seed so differently-seeded jobs share caches.
        let mut other = spec();
        other.seed = 99;
        assert_eq!(s.class_key("none"), other.class_key("none"));
        assert_ne!(s.fingerprint("none"), other.fingerprint("none"));
    }

    #[test]
    fn read_line_handles_eof_and_partial_lines() {
        let mut ok = std::io::BufReader::new(&b"{\"a\":1}\nrest"[..]);
        assert_eq!(read_line(&mut ok).unwrap().as_deref(), Some("{\"a\":1}"));
        // Trailing bytes with no newline: mid-write disconnect, not a line.
        assert_eq!(read_line(&mut ok).unwrap(), None);
        let mut empty = std::io::BufReader::new(&b""[..]);
        assert_eq!(read_line(&mut empty).unwrap(), None);
    }

    #[test]
    fn read_line_rejects_oversized_lines() {
        let mut big = Vec::new();
        big.resize(MAX_LINE_BYTES + 10, b'x');
        big.push(b'\n');
        let mut r = std::io::BufReader::new(&big[..]);
        let err = read_line(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn crlf_is_tolerated() {
        let mut r = std::io::BufReader::new(&b"{\"x\":2}\r\n"[..]);
        assert_eq!(read_line(&mut r).unwrap().as_deref(), Some("{\"x\":2}"));
    }

    #[test]
    fn malformed_json_is_a_decode_error() {
        assert!(decode_request("{not json").is_err());
        assert!(decode_request("{\"id\":true}").is_err());
    }
}
