//! A thin synchronous client for the `ansor-serve` protocol.
//!
//! One request in flight at a time per connection (the protocol is
//! strictly request/response); open more clients for concurrency.

use std::io::BufReader;
use std::net::TcpStream;

use crate::proto::{
    decode_response, read_line, write_line, JobResult, JobSpec, JobStatus, Request, Response,
    ServerStats,
};

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            next_id: 0,
        })
    }

    /// Sends one request and reads its response. Protocol-level failures
    /// (`ok: false`) are returned as `Err` with the server's message.
    pub fn call(&mut self, mut req: Request) -> Result<Response, String> {
        self.next_id += 1;
        req.id = self.next_id;
        write_line(&mut self.writer, &req).map_err(|e| format!("send: {e}"))?;
        let line = read_line(&mut self.reader)
            .map_err(|e| format!("recv: {e}"))?
            .ok_or_else(|| "server closed the connection".to_string())?;
        let resp = decode_response(&line)?;
        if !resp.ok {
            return Err(resp
                .error
                .unwrap_or_else(|| "unspecified server error".into()));
        }
        Ok(resp)
    }

    fn request(&self, method: &str) -> Request {
        Request {
            id: 0, // assigned by `call`
            method: method.into(),
            job: None,
            spec: None,
            drain: None,
            offset: None,
        }
    }

    /// Submits a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> Result<String, String> {
        let mut req = self.request("submit");
        req.spec = Some(spec);
        self.call(req)?
            .job
            .ok_or_else(|| "submit response carried no job id".into())
    }

    /// Snapshot of a job's progress.
    pub fn status(&mut self, job: &str) -> Result<JobStatus, String> {
        let mut req = self.request("status");
        req.job = Some(job.into());
        self.call(req)?
            .status
            .ok_or_else(|| "status response carried no status".into())
    }

    /// A finished job's result; errors if the job is still running.
    pub fn result(&mut self, job: &str) -> Result<JobResult, String> {
        let mut req = self.request("result");
        req.job = Some(job.into());
        self.call(req)?
            .result
            .ok_or_else(|| "result response carried no result".into())
    }

    /// Blocks until the job finishes, then returns its result.
    pub fn wait(&mut self, job: &str) -> Result<JobResult, String> {
        let mut req = self.request("wait");
        req.job = Some(job.into());
        self.call(req)?
            .result
            .ok_or_else(|| "wait response carried no result".into())
    }

    /// Requests cancellation (idempotent; takes effect at the job's next
    /// tuning round if it is already running).
    pub fn cancel(&mut self, job: &str) -> Result<(), String> {
        let mut req = self.request("cancel");
        req.job = Some(job.into());
        self.call(req).map(|_| ())
    }

    /// Pulls a finished job's full provenance trace (the per-job JSONL
    /// the daemon wrote under its `--trace-dir`), reassembling it from
    /// offset-ordered chunks. Feed the result to `trace-report`.
    pub fn trace(&mut self, job: &str) -> Result<String, String> {
        let mut out = String::new();
        let mut offset = 0u64;
        loop {
            let mut req = self.request("trace");
            req.job = Some(job.into());
            req.offset = Some(offset);
            let chunk = self
                .call(req)?
                .trace
                .ok_or_else(|| "trace response carried no chunk".to_string())?;
            if chunk.offset != offset {
                return Err(format!(
                    "trace chunk at offset {} but {} was requested",
                    chunk.offset, offset
                ));
            }
            let eof = chunk.eof;
            if chunk.data.is_empty() && !eof {
                return Err("empty non-final trace chunk".into());
            }
            offset += chunk.data.len() as u64;
            out.push_str(&chunk.data);
            if eof {
                return Ok(out);
            }
        }
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> Result<ServerStats, String> {
        let req = self.request("stats");
        self.call(req)?
            .stats
            .ok_or_else(|| "stats response carried no stats".into())
    }

    /// Asks the server to shut down. With `drain`, queued jobs finish
    /// first; without, everything is cancelled. The server closes this
    /// connection after responding.
    pub fn shutdown(&mut self, drain: bool) -> Result<(), String> {
        let mut req = self.request("shutdown");
        req.drain = Some(drain);
        self.call(req).map(|_| ())
    }
}
