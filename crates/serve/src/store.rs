//! The persistent shared warm store.
//!
//! The store is what makes the daemon more than N copies of `ansor-tune`:
//! measurement results, featurizations, and tuning records survive across
//! jobs *and* across server restarts, so a repeat job finds most of its
//! work already done. Three layers, by sharing safety (see the
//! determinism notes in `ansor_core::session`):
//!
//! - **Measurement caches**, one per *workload class* (operator, shape,
//!   batch, target, fault spec — everything that determines a measurement
//!   except the seed). Sharing across seeds is determinism-transparent: a
//!   hit returns exactly what a cold measurement of the same program
//!   would. Caches are keyed per class so signatures from different DAGs
//!   or fault configurations can never collide.
//! - **One featurization cache** for the whole store: features are pure in
//!   the program alone.
//! - **Tuning records** per class, persisted as the store file and used
//!   both to re-prime the measurement caches after a restart (each record
//!   is replayed to its program signature) and to warm-start jobs that opt
//!   in.
//!
//! Persistence reuses the atomic write-temp-then-rename discipline of the
//! checkpoint machinery: the store file is either the old version or the
//! new one, never a torn mix.

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ansor_core::{FeatureBlock, StepSequenceModel, TuningRecordLog};
use ansor_runtime::SigCache;
use ansor_workloads::build_case;
use hwsim::MeasureResult;
use serde::{Deserialize, Serialize};

use crate::proto::JobSpec;

/// Store file format version.
pub const STORE_VERSION: u32 = 1;

/// Per-class measurement-cache capacity (entries).
const MEASURE_CACHE_CAPACITY: usize = 1 << 15;

/// Store-wide featurization-cache capacity (entries).
const FEATURE_CACHE_CAPACITY: usize = 1 << 15;

/// Records retained per class entry; oldest are dropped beyond this.
const MAX_RECORDS_PER_ENTRY: usize = 8192;

/// Everything the store remembers about one workload class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreEntry {
    /// Class key (`JobSpec::class_key`).
    pub key: String,
    /// Operator class name.
    pub op: String,
    /// Shape index.
    pub shape: usize,
    /// Batch size.
    pub batch: i64,
    /// Target name.
    pub target: String,
    /// Fault spec the measurements ran under.
    pub faults: String,
    /// Best seconds ever observed for the class (`None` until a job
    /// finds a valid program).
    pub best_seconds: Option<f64>,
    /// Jobs whose logs were absorbed into this entry.
    pub jobs_absorbed: u64,
    /// Deduplicated tuning records, capped at `MAX_RECORDS_PER_ENTRY`.
    pub records: Vec<TuningRecordLog>,
    /// Monotonic use tick (bumped on absorb and warm-start reads); the
    /// byte-budget compactor evicts the smallest tick first. Defaulted so
    /// stores written before compaction existed still load.
    #[serde(default)]
    pub last_used: u64,
}

/// On-disk form of the store.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreFile {
    version: u32,
    entries: Vec<StoreEntry>,
    /// Store-wide step-sequence surrogate, trained on every absorbed
    /// record across class keys (the cross-class transfer model).
    /// Defaulted so stores written before the surrogate existed still
    /// load.
    #[serde(default)]
    surrogate: Option<StepSequenceModel>,
}

/// Summary of what [`WarmStore::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreLoadStats {
    /// Class entries loaded.
    pub entries: usize,
    /// Tuning records loaded.
    pub records: usize,
    /// Measurement-cache entries primed by replaying records.
    pub primed: usize,
    /// Records that failed to replay (skipped, not fatal).
    pub replay_failures: usize,
}

/// The shared warm store: caches plus persisted records.
#[derive(Debug)]
pub struct WarmStore {
    path: Option<PathBuf>,
    entries: Mutex<BTreeMap<String, StoreEntry>>,
    measure_caches: Mutex<HashMap<String, Arc<SigCache<MeasureResult>>>>,
    feature_cache: Arc<SigCache<FeatureBlock>>,
    /// Store-wide step-sequence surrogate, trained on every absorbed
    /// record (across class keys) and handed to jobs that opt into
    /// cross-class transfer.
    surrogate: Mutex<StepSequenceModel>,
    /// Cached serialized byte size per entry (updated on absorb/evict),
    /// so the compaction check and the `store_bytes` gauge never
    /// re-serialize the whole store.
    entry_bytes: Mutex<BTreeMap<String, u64>>,
    /// Store-wide serialized-entry byte budget; 0 = unlimited.
    byte_budget: AtomicU64,
    /// LRU clock: next `last_used` tick.
    clock: AtomicU64,
    /// Entries evicted by byte-budget compaction over this process's
    /// lifetime.
    evictions: AtomicU64,
    /// Serializes [`WarmStore::save`] calls: concurrent workers would
    /// otherwise race on the shared temp file between write and rename.
    save_lock: Mutex<()>,
}

impl WarmStore {
    /// An in-memory store with no persistence (caches still shared across
    /// jobs within the process).
    pub fn in_memory() -> WarmStore {
        WarmStore {
            path: None,
            entries: Mutex::new(BTreeMap::new()),
            measure_caches: Mutex::new(HashMap::new()),
            feature_cache: Arc::new(SigCache::new(FEATURE_CACHE_CAPACITY)),
            surrogate: Mutex::new(StepSequenceModel::new()),
            entry_bytes: Mutex::new(BTreeMap::new()),
            byte_budget: AtomicU64::new(0),
            clock: AtomicU64::new(1),
            evictions: AtomicU64::new(0),
            save_lock: Mutex::new(()),
        }
    }

    /// Opens (or creates) a persistent store at `path`, re-priming the
    /// per-class measurement caches by replaying every stored record to
    /// its program signature. A missing file is an empty store; a corrupt
    /// or wrong-version file is an error (the operator should move it
    /// aside rather than have it silently overwritten).
    pub fn open(path: impl AsRef<Path>) -> Result<(WarmStore, StoreLoadStats), String> {
        let path = path.as_ref().to_path_buf();
        let mut store = WarmStore::in_memory();
        store.path = Some(path.clone());
        let mut stats = StoreLoadStats::default();
        let data = match std::fs::read_to_string(&path) {
            Ok(d) => d,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((store, stats));
            }
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let file: StoreFile =
            serde_json::from_str(&data).map_err(|e| format!("parse {}: {e:?}", path.display()))?;
        if file.version != STORE_VERSION {
            return Err(format!(
                "store {} has version {}, expected {STORE_VERSION}",
                path.display(),
                file.version
            ));
        }
        if let Some(sur) = file.surrogate {
            *store.surrogate.lock().expect("store lock poisoned") = sur.validated();
        }
        let mut max_tick = 0;
        for entry in file.entries {
            stats.entries += 1;
            stats.records += entry.records.len();
            max_tick = max_tick.max(entry.last_used);
            let (primed, failed) = store.prime_class(&entry);
            stats.primed += primed;
            stats.replay_failures += failed;
            store
                .entries
                .lock()
                .expect("store lock poisoned")
                .insert(entry.key.clone(), entry);
        }
        store.clock.store(max_tick + 1, Ordering::Relaxed);
        store.recompute_entry_bytes();
        Ok((store, stats))
    }

    /// Rebuilds the per-entry serialized-size cache from scratch (load
    /// path only; absorb maintains it incrementally).
    fn recompute_entry_bytes(&self) {
        let entries = self.entries.lock().expect("store lock poisoned");
        let mut bytes = self.entry_bytes.lock().expect("store lock poisoned");
        bytes.clear();
        for (key, entry) in entries.iter() {
            let json = serde_json::to_string(entry).expect("store entry serializes");
            bytes.insert(key.clone(), json.len() as u64);
        }
    }

    /// Replays one entry's records into its class measurement cache.
    /// Returns `(primed, replay_failures)`.
    fn prime_class(&self, entry: &StoreEntry) -> (usize, usize) {
        let Some(dag) = build_case(&entry.op, entry.shape, entry.batch) else {
            // Unknown workload (e.g. a store written by a newer binary):
            // keep the records, just don't prime from them.
            return (0, entry.records.len());
        };
        let cache = self.measure_cache(&entry.key);
        let mut primed = 0;
        let mut failed = 0;
        for r in &entry.records {
            match r.replay(dag.clone()) {
                Ok(state) => {
                    cache.insert(
                        state.signature(),
                        MeasureResult {
                            seconds: r.seconds,
                            error: r.error.clone(),
                        },
                    );
                    primed += 1;
                }
                Err(_) => failed += 1,
            }
        }
        (primed, failed)
    }

    /// The measurement cache for a workload class, created on first use.
    /// Only sessions of the same class (same `JobSpec::class_key`) may
    /// share it — the key pins target and fault configuration, which is
    /// exactly the condition `Measurer::set_result_cache` requires.
    pub fn measure_cache(&self, class_key: &str) -> Arc<SigCache<MeasureResult>> {
        let mut caches = self.measure_caches.lock().expect("store lock poisoned");
        Arc::clone(
            caches
                .entry(class_key.to_string())
                .or_insert_with(|| Arc::new(SigCache::new(MEASURE_CACHE_CAPACITY))),
        )
    }

    /// The store-wide featurization cache.
    pub fn feature_cache(&self) -> Arc<SigCache<FeatureBlock>> {
        Arc::clone(&self.feature_cache)
    }

    /// Stored tuning records for a class (for opt-in warm starts). Counts
    /// as a use for LRU compaction.
    pub fn records_for(&self, class_key: &str) -> Vec<TuningRecordLog> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("store lock poisoned");
        entries
            .get_mut(class_key)
            .map(|e| {
                e.last_used = tick;
                e.records.clone()
            })
            .unwrap_or_default()
    }

    /// Best stored seconds for a class, if any job has found one.
    pub fn best_seconds_for(&self, class_key: &str) -> Option<f64> {
        self.entries
            .lock()
            .expect("store lock poisoned")
            .get(class_key)
            .and_then(|e| e.best_seconds)
    }

    /// Merges a finished job's tuning log into the store (deduplicated by
    /// step history, capped per entry) and updates the class's best. The
    /// measurement cache is already warm — the job wrote into it while
    /// running — so only the persisted layer needs the records. Returns
    /// the number of newly absorbed (deduplicated) records, which the
    /// daemon's journal records per job.
    pub fn absorb(&self, spec: &JobSpec, faults: &str, log: &[TuningRecordLog]) -> usize {
        let key = spec.class_key(faults);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("store lock poisoned");
        let entry = entries.entry(key.clone()).or_insert_with(|| StoreEntry {
            key: key.clone(),
            op: spec.op.clone(),
            shape: spec.shape,
            batch: spec.batch,
            target: spec.target.clone(),
            faults: faults.to_string(),
            best_seconds: None,
            jobs_absorbed: 0,
            records: Vec::new(),
            last_used: 0,
        });
        entry.jobs_absorbed += 1;
        entry.last_used = tick;
        let mut seen: std::collections::HashSet<u64> =
            entry.records.iter().map(steps_hash).collect();
        let mut absorbed: Vec<&TuningRecordLog> = Vec::new();
        for r in log {
            if entry.records.len() >= MAX_RECORDS_PER_ENTRY {
                break;
            }
            if seen.insert(steps_hash(r)) {
                entry.records.push(r.clone());
                absorbed.push(r);
            }
            if r.is_valid() {
                // (not `map_or`/`is_none_or`: the latter postdates the MSRV)
                let better = match entry.best_seconds {
                    Some(b) => r.seconds < b,
                    None => true,
                };
                if better {
                    entry.best_seconds = Some(r.seconds);
                }
            }
        }
        // Train the store-wide transfer surrogate on the newly absorbed
        // (deduplicated) records only, so re-running the same job doesn't
        // double-weight its programs.
        {
            let mut sur = self.surrogate.lock().expect("store lock poisoned");
            for r in &absorbed {
                sur.update(&r.task, &r.steps, r.seconds);
            }
        }
        let absorbed_count = absorbed.len();
        let entry_json = serde_json::to_string(&*entry).expect("store entry serializes");
        self.entry_bytes
            .lock()
            .expect("store lock poisoned")
            .insert(key.clone(), entry_json.len() as u64);
        drop(entries);
        self.compact(&key);
        absorbed_count
    }

    /// Evicts least-recently-used entries (never `keep_key`, the entry the
    /// caller just touched) until the summed serialized entry size fits
    /// the byte budget. A no-op when no budget is set.
    fn compact(&self, keep_key: &str) {
        let budget = self.byte_budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        loop {
            let victim = {
                let entries = self.entries.lock().expect("store lock poisoned");
                let bytes = self.entry_bytes.lock().expect("store lock poisoned");
                let total: u64 = bytes.values().sum();
                if total <= budget || entries.len() <= 1 {
                    return;
                }
                match entries
                    .values()
                    .filter(|e| e.key != keep_key)
                    .min_by_key(|e| e.last_used)
                {
                    Some(e) => e.key.clone(),
                    None => return,
                }
            };
            self.entries
                .lock()
                .expect("store lock poisoned")
                .remove(&victim);
            self.entry_bytes
                .lock()
                .expect("store lock poisoned")
                .remove(&victim);
            // Drop the class's measurement cache too: with the records
            // gone it can no longer be re-primed after a restart, and
            // keeping it would hold the evicted memory live.
            self.measure_caches
                .lock()
                .expect("store lock poisoned")
                .remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sets the store-wide serialized-entry byte budget (`None` =
    /// unlimited). Enforced lazily, on each absorb.
    pub fn set_byte_budget(&self, budget: Option<u64>) {
        self.byte_budget
            .store(budget.unwrap_or(0), Ordering::Relaxed);
    }

    /// Approximate serialized size of all entries, in bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.entry_bytes
            .lock()
            .expect("store lock poisoned")
            .values()
            .sum()
    }

    /// Entries evicted by byte-budget compaction in this process.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Snapshot of the store-wide transfer surrogate.
    pub fn surrogate(&self) -> StepSequenceModel {
        self.surrogate.lock().expect("store lock poisoned").clone()
    }

    /// Training updates absorbed into the store-wide surrogate.
    pub fn surrogate_updates(&self) -> u64 {
        self.surrogate
            .lock()
            .expect("store lock poisoned")
            .num_updates()
    }

    /// Number of class entries.
    pub fn entry_count(&self) -> usize {
        self.entries.lock().expect("store lock poisoned").len()
    }

    /// Total records across all entries.
    pub fn record_count(&self) -> usize {
        self.entries
            .lock()
            .expect("store lock poisoned")
            .values()
            .map(|e| e.records.len())
            .sum()
    }

    /// Persists the store atomically (write temp file, then rename). A
    /// no-op for in-memory stores.
    pub fn save(&self) -> Result<(), String> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let _guard = self.save_lock.lock().expect("save lock poisoned");
        let entries: Vec<StoreEntry> = self
            .entries
            .lock()
            .expect("store lock poisoned")
            .values()
            .cloned()
            .collect();
        let surrogate = {
            let sur = self.surrogate.lock().expect("store lock poisoned");
            (sur.num_updates() > 0).then(|| sur.clone())
        };
        let file = StoreFile {
            version: STORE_VERSION,
            entries,
            surrogate,
        };
        let json = serde_json::to_string(&file).expect("store serializes");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }
}

/// FNV-1a hash of a record's step history (the dedup key — two records
/// with the same steps describe the same program).
fn steps_hash(r: &TuningRecordLog) -> u64 {
    let json = serde_json::to_string(&r.steps).expect("steps serialize");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in json.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            op: "GMM".into(),
            shape: 0,
            batch: 1,
            target: "intel".into(),
            trials: 32,
            seed: 1,
            warm_start: None,
            threads: None,
            faults: None,
            prerank_keep: None,
            transfer: None,
        }
    }

    fn record(trial: u64, seconds: f64) -> TuningRecordLog {
        TuningRecordLog {
            task: "GMM:s0b1".into(),
            trial,
            steps: Vec::new(),
            seconds,
            error: None,
        }
    }

    #[test]
    fn absorb_dedupes_and_tracks_best() {
        let store = WarmStore::in_memory();
        let s = spec();
        let absorbed = store.absorb(&s, "none", &[record(1, 2e-3), record(2, 1e-3)]);
        // Same step history (empty) → dedup keeps one record.
        assert_eq!(absorbed, 1);
        assert_eq!(store.record_count(), 1);
        assert_eq!(store.entry_count(), 1);
        assert_eq!(store.best_seconds_for(&s.class_key("none")), Some(1e-3));
        // A second job with a worse result doesn't regress the best, and
        // its already-seen record doesn't count as newly absorbed.
        assert_eq!(store.absorb(&s, "none", &[record(1, 5e-3)]), 0);
        assert_eq!(store.best_seconds_for(&s.class_key("none")), Some(1e-3));
    }

    #[test]
    fn save_and_reopen_round_trips() {
        let dir = std::env::temp_dir().join(format!("ansor-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);

        let (store, stats) = WarmStore::open(&path).unwrap();
        assert_eq!(stats, StoreLoadStats::default());
        let s = spec();
        store.absorb(&s, "none", &[record(1, 3e-3)]);
        store.save().unwrap();

        let (reopened, stats) = WarmStore::open(&path).unwrap();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.records, 1);
        assert_eq!(reopened.best_seconds_for(&s.class_key("none")), Some(3e-3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = std::env::temp_dir().join(format!("ansor-store-v-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        std::fs::write(&path, "{\"version\":999,\"entries\":[]}").unwrap();
        let err = WarmStore::open(&path).unwrap_err();
        assert!(err.contains("version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    fn record_with_steps(trial: u64, seconds: f64, split: i64) -> TuningRecordLog {
        TuningRecordLog {
            task: "GMM:s0b1".into(),
            trial,
            steps: vec![tensor_ir::Step::Split {
                node: "C".into(),
                iter: "i".into(),
                lengths: vec![split],
            }],
            seconds,
            error: None,
        }
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_entries() {
        let store = WarmStore::in_memory();
        let a = spec();
        let mut b = spec();
        b.shape = 1;
        let mut c = spec();
        c.shape = 2;
        store.absorb(&a, "none", &[record_with_steps(1, 2e-3, 2)]);
        store.absorb(&b, "none", &[record_with_steps(1, 2e-3, 4)]);
        // Touch A so B becomes the least recently used.
        assert!(!store.records_for(&a.class_key("none")).is_empty());
        let two_entries = store.resident_bytes();
        assert!(two_entries > 0);
        // Budget fits roughly two entries; absorbing a third must evict B.
        store.set_byte_budget(Some(two_entries + 8));
        store.absorb(&c, "none", &[record_with_steps(1, 2e-3, 8)]);
        assert_eq!(store.entry_count(), 2);
        assert_eq!(store.eviction_count(), 1);
        assert!(store.records_for(&b.class_key("none")).is_empty());
        assert!(!store.records_for(&a.class_key("none")).is_empty());
        assert!(!store.records_for(&c.class_key("none")).is_empty());
        assert!(store.resident_bytes() <= two_entries + 8);
    }

    #[test]
    fn surrogate_survives_save_and_reopen() {
        let dir = std::env::temp_dir().join(format!("ansor-store-s-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);

        let (store, _) = WarmStore::open(&path).unwrap();
        let s = spec();
        let log: Vec<TuningRecordLog> = (0..12)
            .map(|i| record_with_steps(i, 1e-3 * (i + 1) as f64, i as i64 + 1))
            .collect();
        store.absorb(&s, "none", &log);
        assert_eq!(store.surrogate_updates(), 12);
        store.save().unwrap();

        let (reopened, _) = WarmStore::open(&path).unwrap();
        assert_eq!(reopened.surrogate_updates(), 12);
        let probe = vec![tensor_ir::Step::Split {
            node: "C".into(),
            iter: "i".into(),
            lengths: vec![4],
        }];
        assert_eq!(
            store.surrogate().score(&probe).to_bits(),
            reopened.surrogate().score(&probe).to_bits(),
            "persisted surrogate must score bit-identically"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_primes_measure_cache_from_replayed_records() {
        // Run a tiny real tuning job, absorb its log, reopen: the replayed
        // records must land in the class measurement cache.
        use ansor_core::{SearchTask, TuningOptions, TuningSession};
        use hwsim::{HardwareTarget, Measurer};

        let s = spec();
        let dag = build_case(&s.op, s.shape, s.batch).unwrap();
        let target = HardwareTarget::by_name(&s.target).unwrap();
        let task = SearchTask::new(s.task_name(), dag, target.clone());
        let options = TuningOptions {
            num_measure_trials: s.trials,
            seed: s.seed,
            ..Default::default()
        };
        let mut session =
            TuningSession::new(task, options, Measurer::new(target), s.fingerprint("none"));
        session.run(|_| true);
        assert!(!session.log().is_empty());

        let dir = std::env::temp_dir().join(format!("ansor-store-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let _ = std::fs::remove_file(&path);
        let (store, _) = WarmStore::open(&path).unwrap();
        store.absorb(&s, "none", session.log());
        store.save().unwrap();

        let (reopened, stats) = WarmStore::open(&path).unwrap();
        assert!(stats.primed > 0, "{stats:?}");
        assert_eq!(stats.replay_failures, 0, "{stats:?}");
        let cache = reopened.measure_cache(&s.class_key("none"));
        assert_eq!(cache.len(), stats.primed);
        std::fs::remove_file(&path).unwrap();
    }
}
