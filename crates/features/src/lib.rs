//! Program feature extraction (Appendix B of the paper).
//!
//! The learned cost model predicts a score for every *innermost non-loop
//! statement* in the context of the full program; per-statement feature
//! vectors are extracted here. Each vector has [`FEATURE_DIM`] = 164
//! entries, matching the paper's dimensionality, and covers the same groups:
//! arithmetic features, vectorization / unrolling / parallelization
//! features, GPU thread-binding features, the arithmetic-intensity curve
//! (10 interpolated samples), per-buffer access features for up to five
//! buffers, allocation features, and outer-loop features.
//!
//! The exact slot assignment inside the 164 entries follows this crate's
//! layout (documented per group below) rather than TVM's private layout;
//! the information content is the same.
//!
//! Magnitudes are `log2(1 + x)`-scaled, as in the reference implementation.

#![warn(missing_docs)]

mod matrix;

pub use matrix::FeatureMatrix;

use tensor_ir::analysis::{AccessType, BufferAccess, LoopCtx, StoreAnalysis};
use tensor_ir::{Annotation, IterKind, Program};

/// Number of entries in one statement's feature vector.
pub const FEATURE_DIM: usize = 164;

/// Number of buffer-access slots (statements touching more buffers have the
/// smallest buffers dropped; fewer are zero-padded).
pub const N_BUFFER_SLOTS: usize = 5;

const BUFFER_FEATURES: usize = 18;

/// log2(1 + x), the standard magnitude squashing for features.
fn lg(x: f64) -> f32 {
    (1.0 + x.max(0.0)).log2() as f32
}

/// Extracts feature vectors for every innermost statement of a program.
///
/// Compatibility view over [`extract_program_matrix`]; new code that feeds
/// the cost model should prefer the packed matrix form.
pub fn extract_program_features(program: &Program) -> Vec<Vec<f32>> {
    tensor_ir::analysis::analyze(program)
        .iter()
        .map(extract_store_features)
        .collect()
}

/// Extracts one program's per-statement features into a packed
/// single-segment [`FeatureMatrix`] (the cost model's storage form).
pub fn extract_program_matrix(program: &Program) -> FeatureMatrix {
    let mut m = FeatureMatrix::new(FEATURE_DIM);
    m.push_segment(
        tensor_ir::analysis::analyze(program)
            .iter()
            .map(extract_store_features),
    );
    m
}

/// Lowers and featurizes one schedule state into a packed single-segment
/// matrix; the error is the lowering failure's message.
pub fn extract_state_matrix(state: &tensor_ir::State) -> Result<FeatureMatrix, String> {
    match tensor_ir::lower(state) {
        Ok(p) => Ok(extract_program_matrix(&p)),
        Err(e) => Err(e.to_string()),
    }
}

/// Extracts features for a batch of programs on the parallel runtime's
/// worker threads. Results are in input order and bit-identical across
/// thread counts (each program is featurized independently).
pub fn extract_features_batch(programs: &[Program]) -> Vec<Vec<Vec<f32>>> {
    ansor_runtime::parallel_map(programs, extract_program_features)
}

/// Lowers and featurizes a batch of schedule states in parallel; `Err`
/// carries the lowering failure's message so callers can record *why* a
/// state produced no features instead of silently dropping it.
pub fn extract_states_features(states: &[tensor_ir::State]) -> Vec<Result<Vec<Vec<f32>>, String>> {
    ansor_runtime::parallel_map(states, |s| match tensor_ir::lower(s) {
        Ok(p) => Ok(extract_program_features(&p)),
        Err(e) => Err(e.to_string()),
    })
}

/// Extracts the 164-entry feature vector of one analyzed statement.
pub fn extract_store_features(s: &StoreAnalysis) -> Vec<f32> {
    let mut f = Vec::with_capacity(FEATURE_DIM);

    // --- Arithmetic features (10) ---
    let trips = s.trip_count();
    f.push(lg(s.ops.float_add as f64 * trips));
    f.push(lg(s.ops.float_sub as f64 * trips));
    f.push(lg(s.ops.float_mul as f64 * trips));
    f.push(lg(s.ops.float_div as f64 * trips));
    f.push(lg(s.ops.float_mod as f64 * trips));
    f.push(lg(s.ops.float_cmp as f64 * trips));
    f.push(lg(s.ops.math_calls as f64 * trips));
    f.push(lg(s.ops.int_ops as f64 * trips));
    f.push(lg(s.ops.selects as f64 * trips));
    f.push(lg(s.ops.loads as f64 * trips));

    // --- Statement features (4) ---
    f.push(if s.reduce.is_some() { 1.0 } else { 0.0 });
    f.push(lg(trips));
    f.push(lg(s.flops_per_iter()));
    f.push(lg(s.flops_per_iter() * trips));

    // --- Vectorize / unroll / parallel groups (3 × 11) ---
    annotation_group(&mut f, s, Annotation::Vectorize);
    annotation_group(&mut f, s, Annotation::Unroll);
    annotation_group(&mut f, s, Annotation::Parallel);

    // --- GPU thread binding features (7) ---
    let prod_of = |ann: Annotation| -> f64 {
        s.loops
            .iter()
            .filter(|l| l.ann == ann)
            .map(|l| l.extent as f64)
            .product()
    };
    let blocks = prod_of(Annotation::BindBlock);
    let threads = prod_of(Annotation::BindThread);
    let vthreads = prod_of(Annotation::BindVthread);
    f.push(lg(blocks));
    f.push(lg(threads));
    f.push(lg(vthreads));
    f.push(lg(blocks * threads));
    let warp_eff = if threads > 1.0 {
        (threads / ((threads / 32.0).ceil() * 32.0)) as f32
    } else {
        0.0
    };
    f.push(warp_eff);
    f.push(if blocks > 1.0 { 1.0 } else { 0.0 });
    f.push(if threads > 1.0 { 1.0 } else { 0.0 });

    // --- Arithmetic intensity curve (10 samples) ---
    intensity_curve(&mut f, s);

    // --- Allocation features (2) ---
    let out_bytes = s
        .accesses
        .first()
        .map(|a| a.buffer_elems as f64 * 4.0)
        .unwrap_or(0.0);
    f.push(lg(out_bytes));
    f.push(1.0); // one allocation per statement's output buffer

    // --- Other features (8) ---
    f.push(s.loops.len() as f32);
    f.push(lg(trips));
    f.push(lg(s.pragma_unroll as f64));
    f.push(s.loops.iter().filter(|l| l.kind == IterKind::Space).count() as f32);
    f.push(s.loops.iter().filter(|l| l.kind != IterKind::Space).count() as f32);
    f.push(lg(s.loops.last().map(|l| l.extent as f64).unwrap_or(1.0)));
    f.push(lg(s.parallel_extent() as f64));
    f.push(lg(s.independent_accumulators().min(1e6)));

    // --- Buffer access features (5 × 18) ---
    let mut accesses: Vec<&BufferAccess> = s.accesses.iter().collect();
    accesses.sort_by(|a, b| {
        let ba = a.buffer_elems * a.count as i64;
        let bb = b.buffer_elems * b.count as i64;
        bb.cmp(&ba)
    });
    for slot in 0..N_BUFFER_SLOTS {
        match accesses.get(slot) {
            Some(a) => buffer_group(&mut f, s, a),
            None => f.extend(std::iter::repeat_n(0.0, BUFFER_FEATURES)),
        }
    }

    debug_assert_eq!(f.len(), FEATURE_DIM);
    f
}

/// The 11 features of one annotation kind: innermost annotated length,
/// position one-hot (8), product of annotated lengths, count.
fn annotation_group(f: &mut Vec<f32>, s: &StoreAnalysis, ann: Annotation) {
    let annotated: Vec<(usize, &LoopCtx)> = s
        .loops
        .iter()
        .enumerate()
        .filter(|(_, l)| l.ann == ann)
        .collect();
    let innermost = annotated.last();
    f.push(lg(innermost.map(|(_, l)| l.extent as f64).unwrap_or(0.0)));
    // Position one-hot: InnerSpatial, MiddleSpatial, OuterSpatial,
    // InnerReduce, MiddleReduce, OuterReduce, Mixed, None.
    let mut onehot = [0.0f32; 8];
    match innermost {
        None => onehot[7] = 1.0,
        Some(&(pos, l)) => {
            let same_kind: Vec<usize> = s
                .loops
                .iter()
                .enumerate()
                .filter(|(_, x)| x.kind == l.kind)
                .map(|(i, _)| i)
                .collect();
            let slot = match l.kind {
                IterKind::Space | IterKind::Reduce => {
                    let base = if l.kind == IterKind::Space { 0 } else { 3 };
                    if Some(&pos) == same_kind.last() {
                        base // inner
                    } else if Some(&pos) == same_kind.first() {
                        base + 2 // outer
                    } else {
                        base + 1 // middle
                    }
                }
                IterKind::Mixed => 6,
            };
            onehot[slot] = 1.0;
        }
    }
    f.extend_from_slice(&onehot);
    let product: f64 = annotated.iter().map(|(_, l)| l.extent as f64).product();
    f.push(lg(if annotated.is_empty() { 0.0 } else { product }));
    f.push(annotated.len() as f32);
}

/// Ten samples of the arithmetic-intensity curve over loop levels
/// (flops ÷ bytes of the sub-nest at each level, log-scaled, linearly
/// interpolated onto a fixed grid).
fn intensity_curve(f: &mut Vec<f32>, s: &StoreAnalysis) {
    let n = s.loops.len();
    let mut points: Vec<f32> = Vec::with_capacity(n + 1);
    for lvl in (0..=n).rev() {
        let sub_trips: f64 = s.loops[lvl..].iter().map(|l| l.extent as f64).product();
        let flops = s.flops_per_iter() * sub_trips;
        let bytes: f64 = s
            .accesses
            .iter()
            .map(|a| a.touched_elems(lvl, &s.loops) * 4.0)
            .sum();
        points.push(lg(flops / bytes.max(4.0)));
    }
    // points[0] = innermost statement … points[n] = whole nest.
    if points.is_empty() {
        f.extend(std::iter::repeat_n(0.0, 10));
        return;
    }
    for i in 0..10 {
        let t = i as f64 / 9.0 * (points.len() - 1) as f64;
        let lo = t.floor() as usize;
        let hi = t.ceil() as usize;
        let frac = (t - lo as f64) as f32;
        f.push(points[lo] * (1.0 - frac) + points[hi] * frac);
    }
}

/// The 18 features of one buffer access.
fn buffer_group(f: &mut Vec<f32>, s: &StoreAnalysis, a: &BufferAccess) {
    let trips = s.trip_count();
    // Access type one-hot.
    f.push(if a.access == AccessType::Read {
        1.0
    } else {
        0.0
    });
    f.push(if a.access == AccessType::Write {
        1.0
    } else {
        0.0
    });
    f.push(if a.access == AccessType::ReadWrite {
        1.0
    } else {
        0.0
    });
    let bytes = trips * a.count as f64 * 4.0;
    let unique_bytes = a.touched_elems(0, &s.loops) * 4.0;
    let line_elems = 16;
    let stride = a.min_stride(0).unwrap_or(0) as f64;
    let per_line = if stride > 0.0 {
        (line_elems as f64 / stride).clamp(1.0, line_elems as f64)
    } else {
        line_elems as f64
    };
    let lines = (bytes / 4.0 / per_line).max(1.0);
    let unique_lines = a.touched_lines(0, &s.loops, line_elems);
    f.push(lg(bytes));
    f.push(lg(unique_bytes));
    f.push(lg(lines));
    f.push(lg(unique_lines));
    // Reuse classification.
    let invariant_lvl = a
        .strides
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &st)| st == 0)
        .map(|(i, _)| i);
    let (reuse_onehot, dist_iters, dist_bytes, counter) = match invariant_lvl {
        Some(lvl) => {
            // LoopMultipleRead: the loop at `lvl` re-reads the same region.
            let dist: f64 = s.loops[lvl + 1..].iter().map(|l| l.extent as f64).product();
            let bytes_per: f64 = s
                .accesses
                .iter()
                .map(|x| x.touched_elems(lvl + 1, &s.loops) * 4.0)
                .sum();
            ([1.0, 0.0, 0.0], dist, bytes_per, s.loops[lvl].extent as f64)
        }
        None if a.count > 1 => ([0.0, 1.0, 0.0], 1.0, 0.0, a.count as f64),
        None => ([0.0, 0.0, 1.0], 0.0, 0.0, 1.0),
    };
    f.extend_from_slice(&reuse_onehot);
    f.push(lg(dist_iters));
    f.push(lg(dist_bytes));
    f.push(lg(counter));
    f.push(lg(a.innermost_stride().unsigned_abs() as f64));
    f.push(lg(bytes / counter));
    f.push(lg(unique_bytes / counter));
    f.push(lg(lines / counter));
    f.push(lg(unique_lines / counter));
}

/// Human-readable names of all 164 features (for debugging and importances).
pub fn feature_names() -> Vec<String> {
    let mut names: Vec<String> = [
        "f_add",
        "f_sub",
        "f_mul",
        "f_div",
        "f_mod",
        "f_cmp",
        "f_math",
        "i_ops",
        "selects",
        "loads",
        "is_reduce",
        "trips",
        "flops_iter",
        "flops_total",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for g in ["vec", "unroll", "par"] {
        names.push(format!("{g}_len"));
        for p in [
            "inner_sp", "mid_sp", "outer_sp", "inner_rd", "mid_rd", "outer_rd", "mixed", "none",
        ] {
            names.push(format!("{g}_pos_{p}"));
        }
        names.push(format!("{g}_prod"));
        names.push(format!("{g}_num"));
    }
    for n in [
        "gpu_blocks",
        "gpu_threads",
        "gpu_vthreads",
        "gpu_total",
        "gpu_warp_eff",
        "gpu_has_b",
        "gpu_has_t",
    ] {
        names.push(n.to_string());
    }
    for i in 0..10 {
        names.push(format!("ai_{i}"));
    }
    names.push("alloc_bytes".into());
    names.push("alloc_count".into());
    for n in [
        "n_loops",
        "outer_prod",
        "pragma_unroll",
        "n_space",
        "n_reduce",
        "inner_extent",
        "par_extent",
        "indep_acc",
    ] {
        names.push(n.to_string());
    }
    for b in 0..N_BUFFER_SLOTS {
        for n in [
            "rd",
            "wr",
            "rw",
            "bytes",
            "ubytes",
            "lines",
            "ulines",
            "reuse_loop",
            "reuse_serial",
            "reuse_none",
            "rdist_it",
            "rdist_b",
            "rctr",
            "stride",
            "b_per_r",
            "ub_per_r",
            "l_per_r",
            "ul_per_r",
        ] {
            names.push(format!("buf{b}_{n}"));
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tensor_ir::{lower, DagBuilder, Expr, Reducer, State, Step};

    fn matmul_features(steps: &[Step]) -> Vec<Vec<f32>> {
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[64, 64]);
        let w = b.placeholder("B", &[64, 64]);
        b.compute_reduce("C", &[64, 64], &[64], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        let dag = Arc::new(b.build().unwrap());
        let st = State::replay(dag, steps).unwrap();
        extract_program_features(&lower(&st).unwrap())
    }

    #[test]
    fn dimension_is_exactly_164() {
        let feats = matmul_features(&[]);
        assert_eq!(feats.len(), 2); // init + compute statements
        for f in &feats {
            assert_eq!(f.len(), FEATURE_DIM);
        }
        assert_eq!(feature_names().len(), FEATURE_DIM);
    }

    #[test]
    fn vectorize_changes_the_vector_group() {
        let base = matmul_features(&[]);
        let vect = matmul_features(&[
            Step::Split {
                node: "C".into(),
                iter: "j".into(),
                lengths: vec![8],
            },
            Step::Reorder {
                node: "C".into(),
                order: vec!["i".into(), "j.0".into(), "k".into(), "j.1".into()],
            },
            Step::Annotate {
                node: "C".into(),
                iter: "j.1".into(),
                ann: Annotation::Vectorize,
            },
        ]);
        // The compute statement is the one with a reduction flag set.
        let names = feature_names();
        let vec_len = names.iter().position(|n| n == "vec_len").unwrap();
        let base_c = &base[1];
        let vect_c = &vect[1];
        assert_eq!(base_c[vec_len], 0.0);
        assert!((vect_c[vec_len] - lg(8.0)).abs() < 1e-6);
        let pos_none = names.iter().position(|n| n == "vec_pos_none").unwrap();
        assert_eq!(base_c[pos_none], 1.0);
        assert_eq!(vect_c[pos_none], 0.0);
        let pos_inner = names.iter().position(|n| n == "vec_pos_inner_sp").unwrap();
        assert_eq!(vect_c[pos_inner], 1.0);
    }

    #[test]
    fn buffer_reuse_classification() {
        let feats = matmul_features(&[]);
        let names = feature_names();
        let compute = &feats[1];
        // All three big buffers (C store, A, B) show loop reuse: each has an
        // invariant loop in the naive matmul nest.
        for b in 0..3 {
            let slot = names
                .iter()
                .position(|n| n == &format!("buf{b}_reuse_loop"))
                .unwrap();
            assert_eq!(compute[slot], 1.0, "buffer {b}");
        }
        // Slot 4/5 are padding (only 3 buffers accessed).
        let pad = names.iter().position(|n| n == "buf4_bytes").unwrap();
        assert_eq!(compute[pad], 0.0);
    }

    #[test]
    fn parallel_annotation_sets_parallel_extent() {
        let feats = matmul_features(&[Step::Annotate {
            node: "C".into(),
            iter: "i".into(),
            ann: Annotation::Parallel,
        }]);
        let names = feature_names();
        let pe = names.iter().position(|n| n == "par_extent").unwrap();
        assert!((feats[1][pe] - lg(64.0)).abs() < 1e-6);
    }

    #[test]
    fn intensity_curve_is_monotone_for_matmul() {
        // Matmul's arithmetic intensity grows with sub-nest size.
        let feats = matmul_features(&[]);
        let names = feature_names();
        let ai0 = names.iter().position(|n| n == "ai_0").unwrap();
        let c = &feats[1];
        assert!(c[ai0 + 9] >= c[ai0], "{:?}", &c[ai0..ai0 + 10]);
    }

    #[test]
    fn batch_extraction_matches_serial_in_order() {
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[64, 64]);
        let w = b.placeholder("B", &[64, 64]);
        b.compute_reduce("C", &[64, 64], &[64], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        let dag = Arc::new(b.build().unwrap());
        let mut states = Vec::new();
        for f in [1i64, 2, 4, 8, 16, 32] {
            let steps = if f > 1 {
                vec![Step::Split {
                    node: "C".into(),
                    iter: "i".into(),
                    lengths: vec![f],
                }]
            } else {
                vec![]
            };
            states.push(State::replay(dag.clone(), &steps).unwrap());
        }
        let programs: Vec<_> = states.iter().map(|s| lower(s).unwrap()).collect();
        let batch = extract_features_batch(&programs);
        let from_states = extract_states_features(&states);
        for (i, p) in programs.iter().enumerate() {
            assert_eq!(batch[i], extract_program_features(p));
            assert_eq!(from_states[i].as_ref().unwrap(), &batch[i]);
        }
    }

    #[test]
    fn matrix_extraction_matches_nested_extraction() {
        // Oracle: the packed matrix is exactly the nested representation,
        // row for row, for the same program.
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[64, 64]);
        let w = b.placeholder("B", &[64, 64]);
        b.compute_reduce("C", &[64, 64], &[64], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        let dag = Arc::new(b.build().unwrap());
        let st = State::replay(dag, &[]).unwrap();
        let program = lower(&st).unwrap();
        let nested = extract_program_features(&program);
        let m = extract_program_matrix(&program);
        assert_eq!(m.n_cols(), FEATURE_DIM);
        assert_eq!(m.n_segments(), 1);
        assert_eq!(m.segment_nested(0), nested);
        assert_eq!(m, FeatureMatrix::from_nested(&[nested], FEATURE_DIM));
        let via_state = extract_state_matrix(&st).unwrap();
        assert_eq!(via_state, m);
    }

    #[test]
    fn features_are_finite() {
        for f in matmul_features(&[]) {
            for (i, v) in f.iter().enumerate() {
                assert!(v.is_finite(), "feature {i} = {v}");
            }
        }
    }
}
