//! Packed feature storage: one contiguous row-major buffer for many
//! programs' per-statement feature vectors.
//!
//! The legacy representation was `Vec<Vec<Vec<f32>>>` — per program, per
//! store statement, per feature — which scatters rows across the heap and
//! forces a clone of every row on each cost-model retrain. A
//! [`FeatureMatrix`] keeps every row in one `Vec<f32>` and delimits each
//! program's rows with *segment* offsets, so training can borrow the whole
//! buffer as a flat `(data, n_cols)` view and records can refer to their
//! rows by segment index instead of owning copies.
//!
//! Layout invariants:
//!
//! - `data.len()` is a multiple of `n_cols`; row `r` is
//!   `data[r*n_cols .. (r+1)*n_cols]`.
//! - `segments` holds prefix row offsets: `segments[0] == 0`,
//!   `segments.last() == n_rows`, and segment `s` spans rows
//!   `segments[s] .. segments[s+1]`. Empty segments are allowed (a program
//!   that failed to lower contributes zero rows).

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A packed row-major matrix of feature rows, partitioned into segments
/// (one segment per program).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    n_cols: usize,
    /// Prefix row offsets; see the module docs for the invariants.
    segments: Vec<usize>,
}

impl FeatureMatrix {
    /// Creates an empty matrix whose rows will have `n_cols` entries.
    pub fn new(n_cols: usize) -> FeatureMatrix {
        FeatureMatrix {
            data: Vec::new(),
            n_cols,
            segments: vec![0],
        }
    }

    /// Row width.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total number of rows across all segments.
    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.n_cols).unwrap_or(0)
    }

    /// Number of segments (programs).
    pub fn n_segments(&self) -> usize {
        self.segments.len() - 1
    }

    /// The contiguous row-major buffer backing all rows.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Resident size of the packed buffer in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// The row range `segments[s] .. segments[s+1]` of segment `s`.
    pub fn segment_range(&self, s: usize) -> Range<usize> {
        self.segments[s]..self.segments[s + 1]
    }

    /// Number of rows in segment `s`.
    pub fn segment_len(&self, s: usize) -> usize {
        self.segments[s + 1] - self.segments[s]
    }

    /// Segment `s` as one contiguous row-major slice.
    pub fn segment_slice(&self, s: usize) -> &[f32] {
        let r = self.segment_range(s);
        &self.data[r.start * self.n_cols..r.end * self.n_cols]
    }

    /// Iterates the rows of segment `s`.
    pub fn segment_rows(&self, s: usize) -> impl Iterator<Item = &[f32]> {
        self.segment_slice(s).chunks_exact(self.n_cols.max(1))
    }

    /// Appends one segment from individual rows; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `n_cols`.
    pub fn push_segment<R: AsRef<[f32]>>(&mut self, rows: impl IntoIterator<Item = R>) -> usize {
        for row in rows {
            let row = row.as_ref();
            assert_eq!(row.len(), self.n_cols, "feature row width mismatch");
            self.data.extend_from_slice(row);
        }
        self.end_segment()
    }

    /// Appends one segment from an already-packed row-major block (e.g.
    /// another single-segment matrix's [`FeatureMatrix::data`]); returns
    /// the new segment's index. The block is one `memcpy`.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of `n_cols`.
    pub fn push_packed_segment(&mut self, rows: &[f32]) -> usize {
        assert_eq!(
            rows.len() % self.n_cols.max(1),
            0,
            "packed block is not whole rows"
        );
        self.data.extend_from_slice(rows);
        self.end_segment()
    }

    /// Appends an empty segment (a program with no feature rows, e.g. one
    /// that failed to lower); returns its index.
    pub fn push_empty_segment(&mut self) -> usize {
        self.end_segment()
    }

    fn end_segment(&mut self) -> usize {
        self.segments.push(self.data.len() / self.n_cols.max(1));
        self.segments.len() - 2
    }

    /// Compatibility view: segment `s` as the legacy nested per-statement
    /// representation.
    pub fn segment_nested(&self, s: usize) -> Vec<Vec<f32>> {
        self.segment_rows(s).map(|r| r.to_vec()).collect()
    }

    /// Compatibility view: the whole matrix as the legacy
    /// per-program/per-statement/per-feature triple nesting.
    pub fn to_nested(&self) -> Vec<Vec<Vec<f32>>> {
        (0..self.n_segments())
            .map(|s| self.segment_nested(s))
            .collect()
    }

    /// Builds a matrix from the legacy nested representation (one inner
    /// `Vec<Vec<f32>>` per segment).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `n_cols`.
    pub fn from_nested(nested: &[Vec<Vec<f32>>], n_cols: usize) -> FeatureMatrix {
        let mut m = FeatureMatrix::new(n_cols);
        for seg in nested {
            m.push_segment(seg);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeatureMatrix {
        let mut m = FeatureMatrix::new(3);
        m.push_segment([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]);
        m.push_empty_segment();
        m.push_segment([[7.0, 8.0, 9.0]]);
        m
    }

    #[test]
    fn layout_and_accessors() {
        let m = sample();
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_segments(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.segment_range(0), 0..2);
        assert_eq!(m.segment_len(1), 0);
        assert_eq!(m.segment_range(2), 2..3);
        assert_eq!(m.segment_slice(0), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(
            m.segment_rows(2).collect::<Vec<_>>(),
            vec![&[7.0, 8.0, 9.0]]
        );
        assert_eq!(m.resident_bytes(), 9 * 4);
    }

    #[test]
    fn nested_round_trip() {
        let m = sample();
        let nested = m.to_nested();
        assert_eq!(nested.len(), 3);
        assert!(nested[1].is_empty());
        let back = FeatureMatrix::from_nested(&nested, 3);
        assert_eq!(back, m);
    }

    #[test]
    fn packed_append_matches_row_append() {
        let block = sample();
        let mut a = FeatureMatrix::new(3);
        let s = a.push_packed_segment(block.segment_slice(0));
        assert_eq!(s, 0);
        let mut b = FeatureMatrix::new(3);
        b.push_segment(block.segment_rows(0).collect::<Vec<_>>());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_rows_are_rejected() {
        let mut m = FeatureMatrix::new(3);
        m.push_segment([vec![1.0, 2.0]]);
    }

    #[test]
    fn serde_round_trip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: FeatureMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
