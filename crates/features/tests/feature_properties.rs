//! Property and scenario tests for the Appendix-B feature extractor: every
//! feature finite, correct group activation across schedule variations,
//! and discrimination between good and bad schedules.

use std::sync::Arc;

use ansor_features::{extract_program_features, feature_names, FEATURE_DIM};
use proptest::prelude::*;
use tensor_ir::{lower, Annotation, ComputeDag, DagBuilder, Expr, Reducer, State, Step};

fn matmul(n: i64) -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[n, n]);
    let w = b.constant("B", &[n, n]);
    b.compute_reduce("C", &[n, n], &[n], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    Arc::new(b.build().unwrap())
}

fn slot(name: &str) -> usize {
    feature_names()
        .iter()
        .position(|n| n == name)
        .unwrap_or_else(|| panic!("unknown feature {name}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All features stay finite over randomized schedules.
    #[test]
    fn features_always_finite(
        li in prop::sample::select(vec![1i64, 2, 4, 8]),
        lj in prop::sample::select(vec![1i64, 2, 4, 8, 16]),
        lk in prop::sample::select(vec![1i64, 4, 16]),
        vectorize in any::<bool>(),
        parallel in any::<bool>(),
    ) {
        let dag = matmul(64);
        let mut st = State::new(dag);
        st.apply(Step::Split { node: "C".into(), iter: "i".into(), lengths: vec![li] }).unwrap();
        st.apply(Step::Split { node: "C".into(), iter: "j".into(), lengths: vec![lj] }).unwrap();
        st.apply(Step::Split { node: "C".into(), iter: "k".into(), lengths: vec![lk] }).unwrap();
        if vectorize && lj > 1 {
            st.apply(Step::Annotate {
                node: "C".into(), iter: "j.1".into(), ann: Annotation::Vectorize,
            }).unwrap();
        }
        if parallel {
            st.apply(Step::Annotate {
                node: "C".into(), iter: "i.0".into(), ann: Annotation::Parallel,
            }).unwrap();
        }
        let feats = extract_program_features(&lower(&st).unwrap());
        for f in &feats {
            prop_assert_eq!(f.len(), FEATURE_DIM);
            for (i, v) in f.iter().enumerate() {
                prop_assert!(v.is_finite(), "feature {i} not finite");
            }
        }
    }
}

#[test]
fn unroll_group_activates_on_unrolled_loop() {
    let dag = matmul(32);
    let mut st = State::new(dag.clone());
    st.apply(Step::Split {
        node: "C".into(),
        iter: "k".into(),
        lengths: vec![4],
    })
    .unwrap();
    st.apply(Step::Annotate {
        node: "C".into(),
        iter: "k.1".into(),
        ann: Annotation::Unroll,
    })
    .unwrap();
    let feats = extract_program_features(&lower(&st).unwrap());
    let compute = &feats[1]; // init stmt first, compute second
    assert!(compute[slot("unroll_len")] > 0.0);
    assert_eq!(compute[slot("unroll_num")], 1.0);
    assert_eq!(compute[slot("unroll_pos_none")], 0.0);
    // k.1 is the innermost reduce loop.
    assert_eq!(compute[slot("unroll_pos_inner_rd")], 1.0);
}

#[test]
fn gpu_binding_features_reflect_launch_shape() {
    let dag = matmul(64);
    let mut st = State::new(dag);
    st.apply(Step::Split {
        node: "C".into(),
        iter: "i".into(),
        lengths: vec![16],
    })
    .unwrap();
    st.apply(Step::Annotate {
        node: "C".into(),
        iter: "i.0".into(),
        ann: Annotation::BindBlock,
    })
    .unwrap();
    st.apply(Step::Annotate {
        node: "C".into(),
        iter: "i.1".into(),
        ann: Annotation::BindThread,
    })
    .unwrap();
    let feats = extract_program_features(&lower(&st).unwrap());
    let compute = &feats[1];
    assert!((compute[slot("gpu_blocks")] - (1.0f32 + 4.0).log2()).abs() < 1e-6);
    assert!((compute[slot("gpu_threads")] - (1.0f32 + 16.0).log2()).abs() < 1e-6);
    assert_eq!(compute[slot("gpu_has_b")], 1.0);
    assert_eq!(compute[slot("gpu_has_t")], 1.0);
    // 16 threads of a 32-wide warp → 0.5 efficiency.
    assert!((compute[slot("gpu_warp_eff")] - 0.5).abs() < 1e-6);
}

#[test]
fn pragma_feature_tracks_value() {
    let dag = matmul(16);
    let mut st = State::new(dag);
    st.apply(Step::Pragma {
        node: "C".into(),
        max_unroll: 512,
    })
    .unwrap();
    let feats = extract_program_features(&lower(&st).unwrap());
    let compute = &feats[1];
    assert!((compute[slot("pragma_unroll")] - (513.0f32).log2()).abs() < 1e-5);
}

#[test]
fn stride_feature_distinguishes_transposed_access() {
    // Row-major read vs column-major read of the same buffer.
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[64, 64]);
    b.compute("R", &[64, 64], |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[1].clone()])
    });
    b.compute("T", &[64, 64], |ax| {
        Expr::load(a, vec![ax[1].clone(), ax[0].clone()])
    });
    let dag = Arc::new(b.build().unwrap());
    let st = State::new(dag);
    let feats = extract_program_features(&lower(&st).unwrap());
    // Statement 0 = R (stride-1 load), statement 1 = T (stride-64 load).
    // buf1 is the loaded input for both (buf0 is the store).
    let stride = slot("buf1_stride");
    assert!(feats[0][stride] < feats[1][stride]);
}

#[test]
fn feature_names_are_unique() {
    let names = feature_names();
    let set: std::collections::HashSet<&String> = names.iter().collect();
    assert_eq!(set.len(), names.len());
}

#[test]
fn reduction_flag_separates_init_from_compute() {
    let feats = extract_program_features(&lower(&State::new(matmul(16))).unwrap());
    let is_reduce = slot("is_reduce");
    assert_eq!(feats[0][is_reduce], 0.0); // init
    assert_eq!(feats[1][is_reduce], 1.0); // accumulation
}
