//! Hardware target descriptions.
//!
//! These parameterise the analytical machine model. The three presets mirror
//! the paper's evaluation platforms (§7): a 20-core Intel Xeon Platinum
//! 8269CY, a 4-core ARM Cortex-A53 (Raspberry Pi 3b+), and an NVIDIA V100.
//! Absolute numbers are approximate; what matters for reproducing the
//! paper's *comparisons* is that all searchers are measured against the same
//! machine.

use serde::{Deserialize, Serialize};

/// CPU-style or GPU-style execution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// Multi-core CPU with SIMD units and a cache hierarchy.
    Cpu,
    /// Streaming-multiprocessor GPU with thread-block execution.
    Gpu,
}

/// A simulated hardware platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareTarget {
    /// Display name, e.g. `intel-20c`.
    pub name: String,
    /// Execution model.
    pub kind: TargetKind,
    /// Physical cores (CPU) or streaming multiprocessors (GPU).
    pub num_cores: u32,
    /// f32 SIMD lanes per vector operation (8 = AVX2, 16 = AVX-512,
    /// 4 = NEON). For GPUs this is the warp width used for coalescing.
    pub vector_lanes: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Scalar FLOPs retired per cycle per core (2 = one FMA).
    pub flops_per_cycle: f64,
    /// Latency of a dependent FMA chain in cycles (limits single-accumulator
    /// reductions).
    pub fma_latency: f64,
    /// L1 data cache per core, bytes.
    pub l1_bytes: i64,
    /// L2 cache per core, bytes.
    pub l2_bytes: i64,
    /// Shared last-level cache, bytes (0 = none).
    pub l3_bytes: i64,
    /// Cache line size, bytes.
    pub line_bytes: i64,
    /// L2 bandwidth per core, GB/s.
    pub l2_bw_gbs: f64,
    /// L3 bandwidth (shared), GB/s.
    pub l3_bw_gbs: f64,
    /// DRAM bandwidth (shared), GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed cost of entering a parallel region, seconds.
    pub parallel_launch_s: f64,
    /// Per-task scheduling cost of a parallel loop, seconds.
    pub parallel_task_s: f64,
    /// Loop maintenance overhead (increment + branch) in cycles.
    pub loop_overhead_cycles: f64,
    /// GPU only: maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// GPU only: kernel launch overhead, seconds.
    pub kernel_launch_s: f64,
}

impl HardwareTarget {
    /// Peak scalar FLOP/s of one core.
    pub fn core_flops(&self) -> f64 {
        self.freq_ghz * 1e9 * self.flops_per_cycle
    }

    /// Peak vector FLOP/s of one core.
    pub fn core_vector_flops(&self) -> f64 {
        self.core_flops() * self.vector_lanes as f64
    }

    /// Elements of `f32` per cache line.
    pub fn line_elems(&self) -> i64 {
        self.line_bytes / 4
    }

    /// Looks up a built-in target by its CLI name (`intel`, `intel-avx512`,
    /// `arm`, `gpu`) — the vocabulary shared by `ansor-tune --target` and
    /// `ansor-serve` job specs. `None` for unknown names.
    pub fn by_name(name: &str) -> Option<HardwareTarget> {
        match name {
            "intel" => Some(Self::intel_20core()),
            "intel-avx512" => Some(Self::intel_20core_avx512()),
            "arm" => Some(Self::arm_4core()),
            "gpu" => Some(Self::nvidia_v100()),
            _ => None,
        }
    }

    /// The paper's main evaluation CPU: 20-core Intel Platinum 8269CY.
    /// AVX-512 is disabled to mirror §7.1 (8 lanes = AVX2).
    pub fn intel_20core() -> HardwareTarget {
        HardwareTarget {
            name: "intel-20c".into(),
            kind: TargetKind::Cpu,
            num_cores: 20,
            vector_lanes: 8,
            freq_ghz: 3.1,
            flops_per_cycle: 2.0,
            fma_latency: 4.0,
            l1_bytes: 32 * 1024,
            l2_bytes: 1024 * 1024,
            l3_bytes: 36 * 1024 * 1024,
            line_bytes: 64,
            l2_bw_gbs: 100.0,
            l3_bw_gbs: 200.0,
            mem_bw_gbs: 90.0,
            parallel_launch_s: 3e-6,
            parallel_task_s: 0.3e-6,
            loop_overhead_cycles: 2.0,
            max_threads_per_sm: 0,
            kernel_launch_s: 0.0,
        }
    }

    /// The same CPU with AVX-512 enabled (used for the PyTorch/MKL-DNN
    /// vendor baseline in Figure 6, which uses AVX-512 by default).
    pub fn intel_20core_avx512() -> HardwareTarget {
        HardwareTarget {
            name: "intel-20c-avx512".into(),
            vector_lanes: 16,
            ..Self::intel_20core()
        }
    }

    /// The paper's edge platform: 4-core ARM Cortex-A53 @1.4 GHz.
    pub fn arm_4core() -> HardwareTarget {
        HardwareTarget {
            name: "arm-4c".into(),
            kind: TargetKind::Cpu,
            num_cores: 4,
            vector_lanes: 4,
            freq_ghz: 1.4,
            flops_per_cycle: 2.0,
            fma_latency: 4.0,
            l1_bytes: 32 * 1024,
            l2_bytes: 512 * 1024,
            l3_bytes: 0,
            line_bytes: 64,
            l2_bw_gbs: 10.0,
            l3_bw_gbs: 0.0,
            mem_bw_gbs: 4.0,
            parallel_launch_s: 8e-6,
            parallel_task_s: 1e-6,
            loop_overhead_cycles: 3.0,
            max_threads_per_sm: 0,
            kernel_launch_s: 0.0,
        }
    }

    /// The paper's GPU: NVIDIA V100 (80 SMs).
    pub fn nvidia_v100() -> HardwareTarget {
        HardwareTarget {
            name: "nvidia-v100".into(),
            kind: TargetKind::Gpu,
            num_cores: 80,
            vector_lanes: 32,
            freq_ghz: 1.38,
            flops_per_cycle: 128.0, // 64 FP32 cores x FMA per SM
            fma_latency: 4.0,
            l1_bytes: 96 * 1024,       // shared memory / L1 per SM
            l2_bytes: 6 * 1024 * 1024, // device L2 (shared)
            l3_bytes: 0,
            line_bytes: 128,
            l2_bw_gbs: 2000.0,
            l3_bw_gbs: 0.0,
            mem_bw_gbs: 900.0,
            parallel_launch_s: 0.0,
            parallel_task_s: 0.0,
            loop_overhead_cycles: 1.0,
            max_threads_per_sm: 2048,
            kernel_launch_s: 5e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_roofs() {
        let intel = HardwareTarget::intel_20core();
        // 20 cores x 3.1 GHz x 2 flops x 8 lanes ≈ 992 GFLOP/s.
        let peak = intel.core_vector_flops() * intel.num_cores as f64;
        assert!(peak > 0.9e12 && peak < 1.1e12, "{peak}");
        let arm = HardwareTarget::arm_4core();
        assert!(arm.core_vector_flops() < intel.core_vector_flops());
        let gpu = HardwareTarget::nvidia_v100();
        // ~14 TFLOP/s FP32.
        let gpeak = gpu.core_flops() * gpu.num_cores as f64;
        assert!(gpeak > 10e12 && gpeak < 16e12, "{gpeak}");
    }

    #[test]
    fn avx512_doubles_lanes() {
        assert_eq!(
            HardwareTarget::intel_20core_avx512().vector_lanes,
            2 * HardwareTarget::intel_20core().vector_lanes
        );
    }
}
