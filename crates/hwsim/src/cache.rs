//! Trace-based set-associative cache simulator.
//!
//! Used to validate the analytical footprint model on small programs: the
//! simulator executes a lowered program's *address trace* (no values) through
//! an LRU cache hierarchy and reports per-level hits and misses. Tests check
//! that the analytical model's traffic estimates track the simulated miss
//! traffic across schedules.

use tensor_ir::{Expr, NodeId, Program, Stmt};

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Number of sets (power of two).
    sets: usize,
    /// Associativity.
    ways: usize,
    /// tags[set] = lines ordered most-recent-first.
    tags: Vec<Vec<u64>>,
    /// Hit counter.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

impl CacheLevel {
    /// Creates a cache of `capacity_bytes` with the given associativity and
    /// line size. Capacity is rounded down to a power-of-two set count.
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> CacheLevel {
        let lines = (capacity_bytes / line_bytes).max(1);
        let sets = (lines as usize / ways).next_power_of_two() / 2;
        let sets = sets.max(1);
        CacheLevel {
            line_bytes,
            sets,
            ways,
            tags: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses a byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line as usize) & (self.sets - 1);
        let ways = self.ways;
        let v = &mut self.tags[set];
        if let Some(pos) = v.iter().position(|&t| t == line) {
            v.remove(pos);
            v.insert(0, line);
            self.hits += 1;
            true
        } else {
            v.insert(0, line);
            v.truncate(ways);
            self.misses += 1;
            false
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss traffic in bytes (misses × line size).
    pub fn miss_bytes(&self) -> u64 {
        self.misses * self.line_bytes
    }
}

/// A small cache hierarchy (L1 → L2 → memory).
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// First level.
    pub l1: CacheLevel,
    /// Second level.
    pub l2: CacheLevel,
}

impl CacheHierarchy {
    /// Builds a hierarchy from capacities in bytes.
    pub fn new(l1_bytes: u64, l2_bytes: u64, line_bytes: u64) -> CacheHierarchy {
        CacheHierarchy {
            l1: CacheLevel::new(l1_bytes, 8, line_bytes),
            l2: CacheLevel::new(l2_bytes, 16, line_bytes),
        }
    }

    /// Accesses an address through the hierarchy.
    pub fn access(&mut self, addr: u64) {
        if !self.l1.access(addr) {
            self.l2.access(addr);
        }
    }
}

/// Executes a program's address trace through a cache hierarchy.
///
/// Buffers are laid out contiguously in a flat address space, one after
/// another, 64-byte aligned. Only load/store *addresses* are simulated.
pub fn simulate_program(program: &Program, caches: &mut CacheHierarchy) {
    // Buffer base addresses.
    let mut bases: Vec<u64> = Vec::with_capacity(program.dag.nodes.len());
    let mut cursor = 0u64;
    for n in &program.dag.nodes {
        bases.push(cursor);
        let bytes = n.num_elements() as u64 * 4;
        cursor += bytes.div_ceil(64) * 64;
    }
    let mut env = vec![0i64; program.vars.len()];
    for stmt in &program.body {
        trace_stmt(stmt, program, &bases, &mut env, caches);
    }
}

fn trace_stmt(
    stmt: &Stmt,
    program: &Program,
    bases: &[u64],
    env: &mut Vec<i64>,
    caches: &mut CacheHierarchy,
) {
    match stmt {
        Stmt::For {
            var, extent, body, ..
        } => {
            for v in 0..*extent {
                env[*var as usize] = v;
                for s in body {
                    trace_stmt(s, program, bases, env, caches);
                }
            }
        }
        Stmt::Store {
            buffer,
            indices,
            value,
            reduce,
        } => {
            // Loads first (reduction reads the accumulator too).
            trace_loads(value, program, bases, env, caches);
            let addr = flat_addr(program, bases, *buffer, indices, env);
            if reduce.is_some() {
                caches.access(addr);
            }
            caches.access(addr);
        }
    }
}

fn trace_loads(
    e: &Expr,
    program: &Program,
    bases: &[u64],
    env: &[i64],
    caches: &mut CacheHierarchy,
) {
    match e {
        Expr::Load { node, indices } => {
            let addr = flat_addr(program, bases, *node, indices, env);
            caches.access(addr);
            for ix in indices {
                trace_loads(ix, program, bases, env, caches);
            }
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            trace_loads(lhs, program, bases, env, caches);
            trace_loads(rhs, program, bases, env, caches);
        }
        Expr::Unary { arg, .. } => trace_loads(arg, program, bases, env, caches),
        Expr::Select { cond, then, other } => {
            trace_loads(cond, program, bases, env, caches);
            trace_loads(then, program, bases, env, caches);
            trace_loads(other, program, bases, env, caches);
        }
        _ => {}
    }
}

fn flat_addr(program: &Program, bases: &[u64], node: NodeId, indices: &[Expr], env: &[i64]) -> u64 {
    let shape = program.dag.nodes[node].shape();
    let mut flat = 0i64;
    for (ix, &e) in indices.iter().zip(shape) {
        flat = flat * e + eval_index(ix, env);
    }
    bases[node] + (flat.max(0) as u64) * 4
}

fn eval_index(e: &Expr, env: &[i64]) -> i64 {
    use tensor_ir::BinOp;
    match e {
        Expr::IntConst(v) => *v,
        Expr::LoopVar(v) => env[*v as usize],
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_index(lhs, env);
            let r = eval_index(rhs, env);
            match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => {
                    if r == 0 {
                        0
                    } else {
                        l / r
                    }
                }
                BinOp::Mod => {
                    if r == 0 {
                        0
                    } else {
                        l % r
                    }
                }
                BinOp::Min => l.min(r),
                BinOp::Max => l.max(r),
            }
        }
        _ => 0,
    }
}

/// Convenience: returns `(l1_miss_bytes, l2_miss_bytes)` for a program on
/// caches of the given sizes.
pub fn miss_traffic(program: &Program, l1_bytes: u64, l2_bytes: u64) -> (u64, u64) {
    let mut h = CacheHierarchy::new(l1_bytes, l2_bytes, 64);
    simulate_program(program, &mut h);
    (h.l1.miss_bytes(), h.l2.miss_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tensor_ir::{lower, DagBuilder, Expr, Reducer, State, Step};

    fn matmul_program(steps: &[Step], n: i64) -> Program {
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[n, n]);
        let w = b.placeholder("B", &[n, n]);
        b.compute_reduce("C", &[n, n], &[n], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        let dag = Arc::new(b.build().unwrap());
        let st = State::replay(dag, steps).unwrap();
        lower(&st).unwrap()
    }

    #[test]
    fn lru_basics() {
        let mut c = CacheLevel::new(1024, 2, 64);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(4)); // same line
        assert!(!c.access(64));
    }

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = CacheLevel::new(64 * 1024, 8, 64);
        for addr in (0..4096u64).step_by(4) {
            c.access(addr);
        }
        assert_eq!(c.misses, 4096 / 64);
        assert_eq!(c.hits, 1024 - 64);
    }

    #[test]
    fn tiling_reduces_simulated_misses() {
        let naive = matmul_program(&[], 64);
        let tiled = matmul_program(
            &[
                Step::Split {
                    node: "C".into(),
                    iter: "i".into(),
                    lengths: vec![16],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "j".into(),
                    lengths: vec![16],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "k".into(),
                    lengths: vec![16],
                },
                Step::Reorder {
                    node: "C".into(),
                    order: vec![
                        "i.0".into(),
                        "j.0".into(),
                        "k.0".into(),
                        "i.1".into(),
                        "k.1".into(),
                        "j.1".into(),
                    ],
                },
            ],
            64,
        );
        // With a tiny 4 KiB L1, the tiled program has far fewer misses.
        let (naive_miss, _) = miss_traffic(&naive, 4 * 1024, 64 * 1024);
        let (tiled_miss, _) = miss_traffic(&tiled, 4 * 1024, 64 * 1024);
        assert!(
            (tiled_miss as f64) < 0.7 * naive_miss as f64,
            "tiled {tiled_miss} vs naive {naive_miss}"
        );
    }

    #[test]
    fn analytical_traffic_tracks_simulated_ranking() {
        // The analytical model and the cache simulator must agree on which
        // of two schedules has less memory traffic.
        let t = crate::target::HardwareTarget {
            l1_bytes: 4 * 1024,
            l2_bytes: 64 * 1024,
            ..crate::target::HardwareTarget::intel_20core()
        };
        let naive = matmul_program(&[], 64);
        let tiled = matmul_program(
            &[
                Step::Split {
                    node: "C".into(),
                    iter: "i".into(),
                    lengths: vec![16],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "j".into(),
                    lengths: vec![16],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "k".into(),
                    lengths: vec![16],
                },
                Step::Reorder {
                    node: "C".into(),
                    order: vec![
                        "i.0".into(),
                        "j.0".into(),
                        "k.0".into(),
                        "i.1".into(),
                        "k.1".into(),
                        "j.1".into(),
                    ],
                },
            ],
            64,
        );
        let sim_naive = miss_traffic(&naive, 4 * 1024, 64 * 1024).0 as f64;
        let sim_tiled = miss_traffic(&tiled, 4 * 1024, 64 * 1024).0 as f64;
        let ana = |p: &Program| {
            crate::analytical::estimate_detailed(p, &t)
                .iter()
                .map(|c| c.l2_s)
                .sum::<f64>()
        };
        let ana_naive = ana(&naive);
        let ana_tiled = ana(&tiled);
        assert_eq!(
            sim_tiled < sim_naive,
            ana_tiled < ana_naive,
            "simulator and analytical model disagree: sim {sim_naive}/{sim_tiled} ana {ana_naive}/{ana_tiled}"
        );
    }
}
