//! The measurer: turns schedule states into "measured" execution times.
//!
//! Mirrors the paper's builder/runner pipeline (Figure 4's Measurer box):
//! programs are lowered ("built") and timed on the simulated machine
//! ("run"). Invalid programs yield errors rather than panics, exactly as a
//! compilation or runtime failure would on real hardware. Measurements can
//! carry deterministic, seeded log-normal noise to mimic real measurement
//! variance; noise defaults to zero so experiments are reproducible.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ansor_runtime::SigCache;
use serde::{Deserialize, Serialize};
use tensor_ir::{lower, Program, State};

use crate::analytical::estimate_seconds;
use crate::target::HardwareTarget;

/// Options controlling the measurer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureOptions {
    /// Relative standard deviation of the multiplicative measurement noise
    /// (0 = deterministic).
    pub noise: f64,
    /// Seed mixed into the per-program noise.
    pub seed: u64,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            noise: 0.0,
            seed: 0,
        }
    }
}

/// Result of measuring one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureResult {
    /// Execution time in seconds; `f64::INFINITY` when the build failed.
    pub seconds: f64,
    /// Error message when the program could not be built.
    pub error: Option<String>,
}

impl MeasureResult {
    /// Whether the measurement succeeded.
    pub fn is_valid(&self) -> bool {
        self.error.is_none() && self.seconds.is_finite()
    }
}

/// Measures programs on a simulated target and counts measurement trials —
/// the resource unit of the paper's evaluation (§7.1: "at most 1,000
/// measurement trials").
#[derive(Debug, Clone)]
pub struct Measurer {
    /// The simulated hardware.
    pub target: HardwareTarget,
    /// Noise options.
    pub options: MeasureOptions,
    trials: u64,
    telemetry: telemetry::Telemetry,
    /// Signature-keyed result cache: duplicate states (mutation clones,
    /// retained-best re-measures across rounds) are never re-lowered or
    /// re-timed. Shared across clones of this measurer. Results are pure
    /// functions of `(state, target, options)`, so serving from cache is
    /// bit-identical to recomputing. Trial accounting is unaffected —
    /// every requested measurement still consumes a trial, as in the
    /// paper's budget model.
    cache: Arc<SigCache<MeasureResult>>,
}

/// Maps a measurement-error message onto a small stable category set (one
/// failure counter / trace key per category).
pub fn error_kind(message: &str) -> &'static str {
    if message.starts_with("lowering error") {
        "lowering"
    } else if message.starts_with("invalid transform") {
        "invalid_transform"
    } else if message.starts_with("split lengths") {
        "bad_split"
    } else if message.starts_with("unknown iterator") {
        "unknown_iter"
    } else if message.starts_with("unknown node") {
        "unknown_node"
    } else if message.starts_with("interpreter error") {
        "interpreter"
    } else {
        "other"
    }
}

impl Measurer {
    /// Entries kept in the measurement cache. Search runs measure a few
    /// thousand distinct programs; 32k entries covers paper-scale budgets
    /// with slack while bounding memory.
    const CACHE_CAPACITY: usize = 1 << 15;

    /// Creates a measurer for a target with default (noise-free) options.
    pub fn new(target: HardwareTarget) -> Measurer {
        Self::with_options(target, MeasureOptions::default())
    }

    /// Creates a measurer with explicit options.
    pub fn with_options(target: HardwareTarget, options: MeasureOptions) -> Measurer {
        Measurer {
            target,
            options,
            trials: 0,
            telemetry: telemetry::Telemetry::disabled(),
            cache: Arc::new(SigCache::new(Self::CACHE_CAPACITY)),
        }
    }

    /// Lifetime (hits, misses) of the signature-keyed result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Installs a telemetry handle: measurement batches are timed under the
    /// `measurement` phase and per-error-category failure counters
    /// (`measure/errors/<kind>`) plus `measure/valid` accumulate.
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of measurement trials performed so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Resets the trial counter.
    pub fn reset_trials(&mut self) {
        self.trials = 0;
    }

    /// Builds and measures one state, consuming one trial.
    pub fn measure(&mut self, state: &State) -> MeasureResult {
        self.trials += 1;
        let _phase = self.telemetry.span("measurement");
        let result = self.measure_cached(state);
        self.record_outcome(std::slice::from_ref(&result));
        result
    }

    /// Accumulates validity / per-error-kind counters for a set of results.
    fn record_outcome(&self, results: &[MeasureResult]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for r in results {
            match &r.error {
                None => self.telemetry.incr("measure/valid", 1),
                Some(e) => {
                    self.telemetry.incr("measure/failed", 1);
                    self.telemetry
                        .incr(&format!("measure/errors/{}", error_kind(e)), 1);
                }
            }
        }
    }

    /// Measures a batch of states (one trial each). Builds and times the
    /// programs on the parallel runtime's worker threads — the paper's
    /// measurer also builds and runs candidates in parallel — with results
    /// in submission order and bit-identical across thread counts (see
    /// `ansor-runtime`'s determinism contract).
    pub fn measure_batch(&mut self, states: &[State]) -> Vec<MeasureResult> {
        self.trials += states.len() as u64;
        let _phase = self.telemetry.span("measurement");
        let this = &*self;
        let results = ansor_runtime::parallel_map(states, |s| this.measure_cached(s));
        self.record_outcome(&results);
        results
    }

    /// [`Measurer::measure_one`] behind the signature-keyed cache:
    /// duplicate programs are served without re-lowering or re-timing.
    fn measure_cached(&self, state: &State) -> MeasureResult {
        let sig = state.signature();
        if let Some(r) = self.cache.get(sig) {
            self.telemetry.incr("measure/cache_hits", 1);
            return r;
        }
        self.telemetry.incr("measure/cache_misses", 1);
        let r = self.measure_one(state);
        self.cache.insert(sig, r.clone());
        r
    }

    /// Builds and times one state without touching the trial counter.
    fn measure_one(&self, state: &State) -> MeasureResult {
        let lowered = {
            let _phase = self.telemetry.span("lowering");
            lower(state)
        };
        let program = match lowered {
            Ok(p) => p,
            Err(e) => {
                return MeasureResult {
                    seconds: f64::INFINITY,
                    error: Some(e.to_string()),
                }
            }
        };
        MeasureResult {
            seconds: self.time_program(&program, state),
            error: None,
        }
    }

    /// Times an already-lowered program without counting a trial (used by
    /// oracle evaluations in the experiment harnesses).
    pub fn time_only(&self, program: &Program) -> f64 {
        estimate_seconds(program, &self.target)
    }

    fn time_program(&self, program: &Program, state: &State) -> f64 {
        let base = estimate_seconds(program, &self.target);
        if self.options.noise <= 0.0 {
            return base;
        }
        // Deterministic per-program noise: hash the transform history.
        let mut h = DefaultHasher::new();
        self.options.seed.hash(&mut h);
        for s in &state.steps {
            format!("{s:?}").hash(&mut h);
        }
        let bits = h.finish();
        // Two uniforms from the hash → one standard normal (Box–Muller).
        let u1 = ((bits >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let u2 = (bits & 0xFFFF_FFFF) as f64 / 4294967296.0;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        base * (self.options.noise * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tensor_ir::{DagBuilder, Expr, Reducer, State, Step};

    fn simple_state() -> State {
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[64, 64]);
        let w = b.placeholder("B", &[64, 64]);
        b.compute_reduce("C", &[64, 64], &[64], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        State::new(Arc::new(b.build().unwrap()))
    }

    #[test]
    fn measure_counts_trials() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        let st = simple_state();
        let r = m.measure(&st);
        assert!(r.is_valid());
        assert!(r.seconds > 0.0);
        m.measure_batch(&[st.clone(), st]);
        assert_eq!(m.trials(), 3);
    }

    #[test]
    fn parallel_batch_matches_sequential_order_and_values() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        // Build 12 distinct states by splitting with different factors.
        let mut states = Vec::new();
        for f in [1i64, 2, 4, 8, 16, 32] {
            for ax in ["i", "j"] {
                let mut st = simple_state();
                if f > 1 {
                    st.apply(Step::Split {
                        node: "C".into(),
                        iter: ax.into(),
                        lengths: vec![f],
                    })
                    .unwrap();
                }
                states.push(st);
            }
        }
        let batch = m.measure_batch(&states);
        assert_eq!(m.trials(), 12);
        let mut m2 = Measurer::new(HardwareTarget::intel_20core());
        for (s, b) in states.iter().zip(&batch) {
            assert_eq!(m2.measure(s).seconds, b.seconds);
        }
    }

    #[test]
    fn duplicate_states_hit_the_cache_but_still_count_trials() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        let st = simple_state();
        let first = m.measure(&st);
        let again = m.measure(&st);
        assert_eq!(first, again, "cache must be transparent");
        assert_eq!(m.trials(), 2, "every request consumes a trial");
        let (hits, misses) = m.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        // Batches share the same cache.
        let batch = m.measure_batch(&[st.clone(), st]);
        assert_eq!(batch[0], first);
        assert_eq!(m.cache_stats().0, 3);
    }

    #[test]
    fn noise_is_deterministic_per_program() {
        let opts = MeasureOptions {
            noise: 0.05,
            seed: 1,
        };
        let mut m1 = Measurer::with_options(HardwareTarget::intel_20core(), opts.clone());
        let mut m2 = Measurer::with_options(HardwareTarget::intel_20core(), opts);
        let st = simple_state();
        assert_eq!(m1.measure(&st).seconds, m2.measure(&st).seconds);
    }

    #[test]
    fn noise_differs_across_programs() {
        let opts = MeasureOptions {
            noise: 0.05,
            seed: 1,
        };
        let mut m = Measurer::with_options(HardwareTarget::intel_20core(), opts);
        let st1 = simple_state();
        let mut st2 = simple_state();
        st2.apply(Step::Split {
            node: "C".into(),
            iter: "i".into(),
            lengths: vec![8],
        })
        .unwrap();
        // Nearly identical base time, but different noise draw.
        let r1 = m.measure(&st1);
        let r2 = m.measure(&st2);
        assert_ne!(r1.seconds, r2.seconds);
    }
}
