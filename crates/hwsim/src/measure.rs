//! The measurer: turns schedule states into "measured" execution times.
//!
//! Mirrors the paper's builder/runner pipeline (Figure 4's Measurer box):
//! programs are lowered ("built") and timed on the simulated machine
//! ("run"). Invalid programs yield errors rather than panics, exactly as a
//! compilation or runtime failure would on real hardware. Measurements can
//! carry deterministic, seeded log-normal noise to mimic real measurement
//! variance; noise defaults to zero so experiments are reproducible.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ansor_runtime::SigCache;
use serde::{Deserialize, Serialize};
use tensor_ir::{lower, Program, State};

use crate::analytical::estimate_seconds;
use crate::faults::{FaultOutcome, FaultPlan, INJECTED_PREFIX};
use crate::target::HardwareTarget;

/// Options controlling the measurer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureOptions {
    /// Relative standard deviation of the multiplicative measurement noise
    /// (0 = deterministic).
    pub noise: f64,
    /// Seed mixed into the per-program noise.
    pub seed: u64,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            noise: 0.0,
            seed: 0,
        }
    }
}

/// Result of measuring one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureResult {
    /// Execution time in seconds; `f64::INFINITY` when the build failed.
    pub seconds: f64,
    /// Error message when the program could not be built.
    pub error: Option<String>,
}

impl MeasureResult {
    /// Whether the measurement succeeded.
    pub fn is_valid(&self) -> bool {
        self.error.is_none() && self.seconds.is_finite()
    }
}

/// Measures programs on a simulated target and counts measurement trials —
/// the resource unit of the paper's evaluation (§7.1: "at most 1,000
/// measurement trials").
#[derive(Debug, Clone)]
pub struct Measurer {
    /// The simulated hardware.
    pub target: HardwareTarget,
    /// Noise options.
    pub options: MeasureOptions,
    trials: u64,
    telemetry: telemetry::Telemetry,
    /// Signature-keyed result cache: duplicate states (mutation clones,
    /// retained-best re-measures across rounds) are never re-lowered or
    /// re-timed. Shared across clones of this measurer. Results are pure
    /// functions of `(state, target, options)`, so serving from cache is
    /// bit-identical to recomputing. Trial accounting is unaffected —
    /// every requested measurement still consumes a trial, as in the
    /// paper's budget model.
    cache: Arc<SigCache<MeasureResult>>,
    /// Injected-fault plan; `None` measures faithfully. Fault decisions are
    /// pure functions of `(plan, state signature, attempt)`, so results
    /// stay bit-identical across thread counts and the result cache stays
    /// transparent (see `crate::faults`).
    faults: Option<FaultPlan>,
    /// Simulated nanoseconds spent on timed-out attempts and retry
    /// backoff, shared across clones. Integer nanoseconds so concurrent
    /// accumulation is order-insensitive (atomic adds commute exactly).
    sim_nanos: Arc<AtomicU64>,
}

/// Maps a measurement-error message onto a small stable category set (one
/// failure counter / trace key per category).
pub fn error_kind(message: &str) -> &'static str {
    if message.starts_with("injected fault: timeout") {
        "timeout"
    } else if message.starts_with("injected fault: cursed") {
        "cursed_hw"
    } else if message.starts_with("injected fault: gave up") {
        "gave_up"
    } else if message.starts_with("injected fault") {
        "transient"
    } else if message.starts_with("lowering error") {
        "lowering"
    } else if message.starts_with("invalid transform") {
        "invalid_transform"
    } else if message.starts_with("split lengths") {
        "bad_split"
    } else if message.starts_with("unknown iterator") {
        "unknown_iter"
    } else if message.starts_with("unknown node") {
        "unknown_node"
    } else if message.starts_with("interpreter error") {
        "interpreter"
    } else {
        "other"
    }
}

impl Measurer {
    /// Entries kept in the measurement cache. Search runs measure a few
    /// thousand distinct programs; 32k entries covers paper-scale budgets
    /// with slack while bounding memory.
    const CACHE_CAPACITY: usize = 1 << 15;

    /// Creates a measurer for a target with default (noise-free) options.
    pub fn new(target: HardwareTarget) -> Measurer {
        Self::with_options(target, MeasureOptions::default())
    }

    /// Creates a measurer with explicit options. Picks up the process-wide
    /// default fault plan (`--faults`; see [`crate::faults`]) — `None`
    /// unless a binary installed one, so library users and tests are
    /// unaffected.
    pub fn with_options(target: HardwareTarget, options: MeasureOptions) -> Measurer {
        Measurer {
            target,
            options,
            trials: 0,
            telemetry: telemetry::Telemetry::disabled(),
            cache: Arc::new(SigCache::new(Self::CACHE_CAPACITY)),
            faults: crate::faults::default_plan(),
            sim_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates a measurer with an explicit fault plan (ignores the
    /// process-wide default).
    pub fn with_faults(target: HardwareTarget, plan: FaultPlan) -> Measurer {
        let mut m = Measurer::new(target);
        m.faults = Some(plan);
        m
    }

    /// Installs (or clears) the fault plan on this measurer.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Simulated seconds lost to injected faults so far: timed-out
    /// attempts plus retry backoff. 0.0 without a fault plan. Shared
    /// across clones of this measurer.
    pub fn sim_fault_seconds(&self) -> f64 {
        self.sim_nanos.load(Ordering::SeqCst) as f64 * 1e-9
    }

    /// Raw simulated-fault clock in nanoseconds (for checkpointing).
    pub fn sim_fault_nanos(&self) -> u64 {
        self.sim_nanos.load(Ordering::SeqCst)
    }

    /// Restores trial and simulated-clock accounting from a checkpoint.
    pub fn restore_accounting(&mut self, trials: u64, sim_fault_nanos: u64) {
        self.trials = trials;
        self.sim_nanos.store(sim_fault_nanos, Ordering::SeqCst);
    }

    fn add_sim_seconds(&self, seconds: f64) {
        if seconds > 0.0 {
            self.sim_nanos
                .fetch_add((seconds * 1e9) as u64, Ordering::SeqCst);
        }
    }

    /// Lifetime (hits, misses) of the signature-keyed result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits(), self.cache.misses())
    }

    /// Replaces the result cache with a shared one, so several measurers
    /// (e.g. concurrent tuning sessions in a serving daemon) reuse each
    /// other's measurements. Results are pure functions of
    /// `(state, target, options, fault plan)`, so sharing is only
    /// transparent between measurers configured identically — callers key
    /// shared caches by that configuration.
    pub fn set_result_cache(&mut self, cache: Arc<SigCache<MeasureResult>>) {
        self.cache = cache;
    }

    /// Handle on the result cache (for sharing or external priming).
    pub fn result_cache(&self) -> Arc<SigCache<MeasureResult>> {
        Arc::clone(&self.cache)
    }

    /// Installs a telemetry handle: measurement batches are timed under the
    /// `measurement` phase and per-error-category failure counters
    /// (`measure/errors/<kind>`) plus `measure/valid` accumulate.
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of measurement trials performed so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Resets the trial counter.
    pub fn reset_trials(&mut self) {
        self.trials = 0;
    }

    /// Builds and measures one state, consuming one trial.
    pub fn measure(&mut self, state: &State) -> MeasureResult {
        self.trials += 1;
        let _phase = self.telemetry.span("measurement");
        let result = self.measure_cached(state);
        self.record_outcome(std::slice::from_ref(&result));
        result
    }

    /// Accumulates validity / per-error-kind counters for a set of results.
    fn record_outcome(&self, results: &[MeasureResult]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        for r in results {
            match &r.error {
                None => self.telemetry.incr("measure/valid", 1),
                Some(e) => {
                    self.telemetry.incr("measure/failed", 1);
                    self.telemetry
                        .incr(&format!("measure/errors/{}", error_kind(e)), 1);
                }
            }
        }
    }

    /// Measures a batch of states (one trial each). Builds and times the
    /// programs on the parallel runtime's worker threads — the paper's
    /// measurer also builds and runs candidates in parallel — with results
    /// in submission order and bit-identical across thread counts (see
    /// `ansor-runtime`'s determinism contract).
    pub fn measure_batch(&mut self, states: &[State]) -> Vec<MeasureResult> {
        self.trials += states.len() as u64;
        let _phase = self.telemetry.span("measurement");
        let this = &*self;
        let results = ansor_runtime::parallel_map(states, |s| this.measure_cached(s));
        self.record_outcome(&results);
        results
    }

    /// [`Measurer::measure_one`] behind the signature-keyed cache:
    /// duplicate programs are served without re-lowering or re-timing.
    fn measure_cached(&self, state: &State) -> MeasureResult {
        let sig = state.signature();
        if let Some(r) = self.cache.get(sig) {
            self.telemetry.incr("measure/cache_hits", 1);
            return r;
        }
        self.telemetry.incr("measure/cache_misses", 1);
        let r = self.measure_one(state);
        self.cache.insert(sig, r.clone());
        r
    }

    /// Builds and times one state without touching the trial counter.
    fn measure_one(&self, state: &State) -> MeasureResult {
        let lowered = {
            let _phase = self.telemetry.span("lowering");
            lower(state)
        };
        let program = match lowered {
            Ok(p) => p,
            // Lowering failures are deterministic program defects, not
            // hardware flakes: never retried, never fault-injected.
            Err(e) => {
                return MeasureResult {
                    seconds: f64::INFINITY,
                    error: Some(e.to_string()),
                }
            }
        };
        let base = self.time_program(&program, state);
        let Some(plan) = &self.faults else {
            return MeasureResult {
                seconds: base,
                error: None,
            };
        };
        self.measure_with_faults(plan, state.signature(), base)
    }

    /// Retry loop around one fault-injected measurement: capped exponential
    /// backoff on transient failures and timeouts (charged to the simulated
    /// clock), immediate terminal failure on cursed hardware, give-up after
    /// `max_retries`. Pure in `(plan, signature)`, so results are cacheable
    /// and thread-count independent.
    fn measure_with_faults(&self, plan: &FaultPlan, signature: u64, base: f64) -> MeasureResult {
        let mut last_kind = "transient";
        for attempt in 0..=plan.max_retries {
            // Liveness tick for /healthz: a measurer stuck in retry/backoff
            // moves no result counters, but this gauge keeps beating, so the
            // exporter can tell "slow" from "wedged". Deterministic — fault
            // draws are pure in (plan, signature, attempt).
            self.telemetry.gauge_add("measure/heartbeat", 1.0);
            if attempt > 0 {
                self.telemetry.incr("measure/retries", 1);
                self.add_sim_seconds(plan.backoff_seconds(attempt));
            }
            match plan.draw(signature, attempt) {
                FaultOutcome::Ok(mult) => {
                    return MeasureResult {
                        seconds: base * mult,
                        error: None,
                    }
                }
                FaultOutcome::Cursed => {
                    return MeasureResult {
                        seconds: f64::INFINITY,
                        error: Some(format!("{INJECTED_PREFIX}: cursed hardware")),
                    }
                }
                FaultOutcome::Transient => last_kind = "transient",
                FaultOutcome::Timeout => {
                    last_kind = "timeout";
                    self.add_sim_seconds(plan.timeout_seconds);
                }
            }
        }
        self.telemetry.incr("measure/gave_up", 1);
        MeasureResult {
            seconds: f64::INFINITY,
            error: Some(format!(
                "{INJECTED_PREFIX}: gave up after {} retries ({last_kind})",
                plan.max_retries
            )),
        }
    }

    /// Times an already-lowered program without counting a trial (used by
    /// oracle evaluations in the experiment harnesses).
    pub fn time_only(&self, program: &Program) -> f64 {
        estimate_seconds(program, &self.target)
    }

    fn time_program(&self, program: &Program, state: &State) -> f64 {
        let base = estimate_seconds(program, &self.target);
        if self.options.noise <= 0.0 {
            return base;
        }
        // Deterministic per-program noise: hash the transform history.
        let mut h = DefaultHasher::new();
        self.options.seed.hash(&mut h);
        for s in &state.steps {
            format!("{s:?}").hash(&mut h);
        }
        let bits = h.finish();
        // Two uniforms from the hash → one standard normal (Box–Muller).
        let u1 = ((bits >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let u2 = (bits & 0xFFFF_FFFF) as f64 / 4294967296.0;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        base * (self.options.noise * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tensor_ir::{DagBuilder, Expr, Reducer, State, Step};

    fn simple_state() -> State {
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[64, 64]);
        let w = b.placeholder("B", &[64, 64]);
        b.compute_reduce("C", &[64, 64], &[64], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        State::new(Arc::new(b.build().unwrap()))
    }

    #[test]
    fn measure_counts_trials() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        let st = simple_state();
        let r = m.measure(&st);
        assert!(r.is_valid());
        assert!(r.seconds > 0.0);
        m.measure_batch(&[st.clone(), st]);
        assert_eq!(m.trials(), 3);
    }

    #[test]
    fn parallel_batch_matches_sequential_order_and_values() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        // Build 12 distinct states by splitting with different factors.
        let mut states = Vec::new();
        for f in [1i64, 2, 4, 8, 16, 32] {
            for ax in ["i", "j"] {
                let mut st = simple_state();
                if f > 1 {
                    st.apply(Step::Split {
                        node: "C".into(),
                        iter: ax.into(),
                        lengths: vec![f],
                    })
                    .unwrap();
                }
                states.push(st);
            }
        }
        let batch = m.measure_batch(&states);
        assert_eq!(m.trials(), 12);
        let mut m2 = Measurer::new(HardwareTarget::intel_20core());
        for (s, b) in states.iter().zip(&batch) {
            assert_eq!(m2.measure(s).seconds, b.seconds);
        }
    }

    #[test]
    fn duplicate_states_hit_the_cache_but_still_count_trials() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        let st = simple_state();
        let first = m.measure(&st);
        let again = m.measure(&st);
        assert_eq!(first, again, "cache must be transparent");
        assert_eq!(m.trials(), 2, "every request consumes a trial");
        let (hits, misses) = m.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        // Batches share the same cache.
        let batch = m.measure_batch(&[st.clone(), st]);
        assert_eq!(batch[0], first);
        assert_eq!(m.cache_stats().0, 3);
    }

    #[test]
    fn noise_is_deterministic_per_program() {
        let opts = MeasureOptions {
            noise: 0.05,
            seed: 1,
        };
        let mut m1 = Measurer::with_options(HardwareTarget::intel_20core(), opts.clone());
        let mut m2 = Measurer::with_options(HardwareTarget::intel_20core(), opts);
        let st = simple_state();
        assert_eq!(m1.measure(&st).seconds, m2.measure(&st).seconds);
    }

    fn many_states(n: i64) -> Vec<State> {
        let mut states = Vec::new();
        for f in 0..n {
            let mut st = simple_state();
            if f > 0 {
                st.apply(Step::Split {
                    node: "C".into(),
                    iter: "i".into(),
                    lengths: vec![f],
                })
                .ok();
            }
            states.push(st);
        }
        states
    }

    #[test]
    fn inert_plan_is_byte_identical_to_no_plan() {
        let target = HardwareTarget::intel_20core();
        let mut plain = Measurer::new(target.clone());
        let mut inert = Measurer::with_faults(target, FaultPlan::none());
        for st in many_states(16) {
            assert_eq!(plain.measure(&st), inert.measure(&st));
        }
        assert_eq!(inert.sim_fault_nanos(), 0);
    }

    #[test]
    fn persistent_transient_faults_give_up_after_cap() {
        let plan = FaultPlan {
            transient_prob: 1.0,
            timeout_prob: 0.0,
            cursed_prob: 0.0,
            max_retries: 3,
            ..FaultPlan::default()
        };
        let mut m = Measurer::with_faults(HardwareTarget::intel_20core(), plan);
        let tel = telemetry::Telemetry::with_metrics();
        m.set_telemetry(tel.clone());
        let r = m.measure(&simple_state());
        assert!(!r.is_valid());
        let msg = r.error.as_deref().unwrap();
        assert!(msg.starts_with("injected fault: gave up"), "{msg}");
        assert!(crate::faults::is_terminal_fault(msg));
        assert_eq!(error_kind(msg), "gave_up");
        assert_eq!(tel.counter_value("measure/retries"), 3);
        assert_eq!(tel.counter_value("measure/gave_up"), 1);
        // Backoff 0.1 + 0.2 + 0.4 simulated seconds charged.
        assert!((m.sim_fault_seconds() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn cursed_states_fail_terminally_without_retries() {
        let plan = FaultPlan {
            transient_prob: 0.0,
            timeout_prob: 0.0,
            cursed_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut m = Measurer::with_faults(HardwareTarget::intel_20core(), plan);
        let tel = telemetry::Telemetry::with_metrics();
        m.set_telemetry(tel.clone());
        let r = m.measure(&simple_state());
        let msg = r.error.as_deref().unwrap();
        assert!(msg.starts_with("injected fault: cursed"), "{msg}");
        assert!(crate::faults::is_terminal_fault(msg));
        assert_eq!(error_kind(msg), "cursed_hw");
        assert_eq!(tel.counter_value("measure/retries"), 0);
    }

    #[test]
    fn timeouts_charge_the_simulated_clock() {
        let plan = FaultPlan {
            transient_prob: 0.0,
            timeout_prob: 1.0,
            cursed_prob: 0.0,
            max_retries: 2,
            timeout_seconds: 1.5,
            ..FaultPlan::default()
        };
        let mut m = Measurer::with_faults(HardwareTarget::intel_20core(), plan);
        assert!(!m.measure(&simple_state()).is_valid());
        // 3 timed-out attempts (1.5s each) + backoff 0.1 + 0.2.
        assert!((m.sim_fault_seconds() - 4.8).abs() < 1e-9);
    }

    #[test]
    fn recovered_measurements_equal_fault_free_values() {
        // Default plan has noise 0: any state that eventually succeeds must
        // report exactly its fault-free time, and most states succeed.
        let target = HardwareTarget::intel_20core();
        let mut plain = Measurer::new(target.clone());
        let mut faulty = Measurer::with_faults(target, FaultPlan::default());
        let states = many_states(32);
        let mut valid = 0;
        for st in &states {
            let f = faulty.measure(st);
            if f.is_valid() {
                valid += 1;
                assert_eq!(f.seconds, plain.measure(st).seconds);
            } else {
                assert!(crate::faults::is_terminal_fault(
                    f.error.as_deref().unwrap()
                ));
            }
        }
        assert!(valid >= states.len() / 2, "only {valid} valid");
    }

    #[test]
    fn fault_results_are_cached_and_thread_count_independent() {
        let plan = FaultPlan::default();
        let states = many_states(24);
        let mut m = Measurer::with_faults(HardwareTarget::intel_20core(), plan.clone());
        let batch = m.measure_batch(&states);
        // Same states again: served from cache, bit-identical.
        assert_eq!(m.measure_batch(&states), batch);
        // A fresh measurer (fresh cache) reproduces the results exactly.
        let mut m2 = Measurer::with_faults(HardwareTarget::intel_20core(), plan);
        for (s, b) in states.iter().zip(&batch) {
            assert_eq!(&m2.measure(s), b);
        }
    }

    #[test]
    fn restore_accounting_round_trips() {
        let mut m = Measurer::new(HardwareTarget::intel_20core());
        m.restore_accounting(17, 42_000);
        assert_eq!(m.trials(), 17);
        assert_eq!(m.sim_fault_nanos(), 42_000);
        m.measure(&simple_state());
        assert_eq!(m.trials(), 18);
    }

    #[test]
    fn noise_differs_across_programs() {
        let opts = MeasureOptions {
            noise: 0.05,
            seed: 1,
        };
        let mut m = Measurer::with_options(HardwareTarget::intel_20core(), opts);
        let st1 = simple_state();
        let mut st2 = simple_state();
        st2.apply(Step::Split {
            node: "C".into(),
            iter: "i".into(),
            lengths: vec![8],
        })
        .unwrap();
        // Nearly identical base time, but different noise draw.
        let r1 = m.measure(&st1);
        let r2 = m.measure(&st2);
        assert_ne!(r1.seconds, r2.seconds);
    }
}
