//! Simulated hardware: analytical machine model, trace-based cache
//! simulator and the program measurer.
//!
//! The paper measures candidate tensor programs on real machines (a 20-core
//! Intel Xeon, an ARM Cortex-A53 and an NVIDIA V100) through TVM's code
//! generators. This crate substitutes a deterministic simulated machine:
//! the tuner still only observes `(program → execution time)`, so the
//! search-quality comparisons of the evaluation are preserved (see
//! DESIGN.md, "Substitutions").

#![warn(missing_docs)]

pub mod analytical;
pub mod cache;
pub mod faults;
pub mod measure;
pub mod target;

pub use analytical::{estimate_detailed, estimate_seconds, explain, gflops, StoreCost};
pub use cache::{miss_traffic, CacheHierarchy, CacheLevel};
pub use faults::{default_plan, is_terminal_fault, set_default_plan, FaultOutcome, FaultPlan};
pub use measure::{error_kind, MeasureOptions, MeasureResult, Measurer};
pub use target::{HardwareTarget, TargetKind};
