//! Deterministic fault injection for the measurer.
//!
//! Real measurement fleets are flaky: builds fail transiently, runners time
//! out, timing jitters, and the occasional machine is simply broken
//! ("cursed") until it is replaced. AutoTVM and TVM treat these failures as
//! a first-class part of the measurement loop; this module gives the
//! simulated measurer the same adversary, but *deterministically*: every
//! fault decision is a pure function of `(plan seed, program signature,
//! attempt number)` — never of a shared RNG stream, wall clock, or thread
//! interleaving — so fault-injected runs are bit-identical across repeats
//! and across `--threads` counts, and a crashed run can be resumed exactly.
//!
//! The zero-probability plan injects nothing and adds no noise, so a
//! measurer carrying it behaves byte-identically to one with no plan at
//! all (verified by property test).
//!
//! See `docs/ROBUSTNESS.md` for the full fault model.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Configuration of the injected fault distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-attempt probability of a transient measurement failure
    /// (flaky build, runner lost). Retrying usually recovers.
    pub transient_prob: f64,
    /// Per-attempt probability that the measurement times out on the
    /// simulated runner. Also transient: retrying usually recovers.
    pub timeout_prob: f64,
    /// Relative standard deviation of per-*attempt* multiplicative
    /// log-normal timing noise (0 = none). Unlike `MeasureOptions::noise`,
    /// which is fixed per program, this varies per retry — re-measuring the
    /// same program jitters, as on real hardware.
    pub noise: f64,
    /// Probability that a program's signature lands on "cursed hardware":
    /// every attempt fails, sticky for the whole run. Cursed states are the
    /// terminal failures the search must learn to quarantine.
    pub cursed_prob: f64,
    /// Maximum retries after the first attempt before giving up.
    pub max_retries: u32,
    /// Simulated seconds charged for a timed-out attempt (the timeout
    /// wall), and the unit for retry backoff accounting.
    pub timeout_seconds: f64,
    /// Seed mixed into every fault decision.
    pub seed: u64,
}

impl Default for FaultPlan {
    /// The canonical stress plan used by `--faults default`: 10% transient
    /// failures, 2% timeouts, 0.5% cursed states, 3 retries, no timing
    /// noise (so recovered measurements equal their fault-free values).
    fn default() -> Self {
        FaultPlan {
            transient_prob: 0.10,
            timeout_prob: 0.02,
            noise: 0.0,
            cursed_prob: 0.005,
            max_retries: 3,
            timeout_seconds: 1.0,
            seed: 0xFA17,
        }
    }
}

/// What the injector decided for one measurement attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// The attempt succeeds; multiply the measured time by this factor
    /// (1.0 when `noise == 0`).
    Ok(f64),
    /// The attempt fails transiently; worth retrying.
    Transient,
    /// The attempt times out after `timeout_seconds`; worth retrying.
    Timeout,
    /// The program's signature is on cursed hardware; every attempt fails.
    Cursed,
}

impl FaultPlan {
    /// A plan that injects nothing — the identity element. A measurer with
    /// this plan is byte-identical to one with no plan.
    pub fn none() -> FaultPlan {
        FaultPlan {
            transient_prob: 0.0,
            timeout_prob: 0.0,
            noise: 0.0,
            cursed_prob: 0.0,
            max_retries: 3,
            timeout_seconds: 1.0,
            seed: 0,
        }
    }

    /// Whether the plan can ever change a measurement.
    pub fn is_inert(&self) -> bool {
        self.transient_prob <= 0.0
            && self.timeout_prob <= 0.0
            && self.noise <= 0.0
            && self.cursed_prob <= 0.0
    }

    /// Parses a command-line fault spec.
    ///
    /// Accepted forms:
    /// - `none` / `off` — the inert plan;
    /// - `default` — the canonical stress plan ([`FaultPlan::default`]);
    /// - a comma-separated `key=value` list over the plan's fields
    ///   (`transient`, `timeout`, `noise`, `cursed`, `retries`,
    ///   `timeout_secs`, `seed`), starting from the default plan, e.g.
    ///   `--faults transient=0.2,retries=5,seed=7`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        match spec.trim() {
            "none" | "off" => return Ok(FaultPlan::none()),
            "default" => return Ok(FaultPlan::default()),
            _ => {}
        }
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec {part:?}: expected key=value"))?;
            let fval = || -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("fault spec {part:?}: bad number {value:?}"))
            };
            match key.trim() {
                "transient" => plan.transient_prob = fval()?,
                "timeout" => plan.timeout_prob = fval()?,
                "noise" => plan.noise = fval()?,
                "cursed" => plan.cursed_prob = fval()?,
                "retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| format!("fault spec {part:?}: bad integer {value:?}"))?
                }
                "timeout_secs" => plan.timeout_seconds = fval()?,
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("fault spec {part:?}: bad integer {value:?}"))?
                }
                other => return Err(format!("fault spec: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Whether `signature` lands on cursed hardware under this plan.
    /// Sticky by construction: the answer depends only on the plan and the
    /// signature, so it never changes within a run.
    pub fn is_cursed(&self, signature: u64) -> bool {
        self.cursed_prob > 0.0 && uniform(self.seed, signature, CURSED_SALT) < self.cursed_prob
    }

    /// The injector's decision for attempt `attempt` (0-based) of measuring
    /// the program with the given signature. A pure function of
    /// `(plan, signature, attempt)`.
    pub fn draw(&self, signature: u64, attempt: u32) -> FaultOutcome {
        if self.is_cursed(signature) {
            return FaultOutcome::Cursed;
        }
        let u = uniform(self.seed, signature, FAULT_SALT ^ attempt as u64);
        if u < self.transient_prob {
            return FaultOutcome::Transient;
        }
        if u < self.transient_prob + self.timeout_prob {
            return FaultOutcome::Timeout;
        }
        if self.noise <= 0.0 {
            return FaultOutcome::Ok(1.0);
        }
        // Two independent uniforms → one standard normal (Box–Muller),
        // derived from (signature, attempt) so each retry jitters afresh.
        let u1 = uniform(self.seed, signature, NOISE_SALT ^ attempt as u64).max(1e-12);
        let u2 = uniform(self.seed, signature, NOISE_SALT2 ^ attempt as u64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        FaultOutcome::Ok((self.noise * z).exp())
    }

    /// Simulated seconds of retry backoff before attempt `attempt`
    /// (capped exponential: `0.1 · 2^(attempt−1)` seconds, at most 5).
    /// Attempt 0 waits nothing.
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        (0.1 * (1u64 << (attempt - 1).min(16)) as f64).min(5.0)
    }
}

const CURSED_SALT: u64 = 0xC0_55ED;
const FAULT_SALT: u64 = 0xFA_17;
const NOISE_SALT: u64 = 0x01_5E;
const NOISE_SALT2: u64 = 0x02_5E;

/// Deterministic uniform in `[0, 1)` from a `(seed, signature, salt)`
/// triple — splitmix64 finalization over the mixed words.
fn uniform(seed: u64, signature: u64, salt: u64) -> f64 {
    let mut z = seed
        .wrapping_add(signature.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Error-message prefix of every injected fault (stable, matched by
/// [`crate::error_kind`] and the search's quarantine logic).
pub const INJECTED_PREFIX: &str = "injected fault";

/// Whether a measurement error message marks a *terminal* injected fault —
/// cursed hardware or retry exhaustion. The search policy quarantines the
/// program's signature so evolution stops resampling it.
pub fn is_terminal_fault(message: &str) -> bool {
    message.starts_with("injected fault: cursed") || message.starts_with("injected fault: gave up")
}

/// Process-wide default plan applied to newly created measurers — the
/// `--faults <spec>` flag of the bench binaries and `ansor-tune`. `None`
/// (the initial state) leaves measurers fault-free, so default runs are
/// bit-identical to builds without this module. Explicit
/// [`crate::Measurer::set_fault_plan`] calls always win over the default.
static DEFAULT_PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Installs (or clears) the process-wide default fault plan.
pub fn set_default_plan(plan: Option<FaultPlan>) {
    *DEFAULT_PLAN.lock().expect("fault plan lock") = plan;
}

/// The current process-wide default fault plan.
pub fn default_plan() -> Option<FaultPlan> {
    DEFAULT_PLAN.lock().expect("fault plan lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_named_specs() {
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("off").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("default").unwrap(), FaultPlan::default());
        assert!(FaultPlan::none().is_inert());
        assert!(!FaultPlan::default().is_inert());
    }

    #[test]
    fn parse_key_value_spec() {
        let p = FaultPlan::parse("transient=0.2, timeout=0.05,retries=5,seed=9").unwrap();
        assert_eq!(p.transient_prob, 0.2);
        assert_eq!(p.timeout_prob, 0.05);
        assert_eq!(p.max_retries, 5);
        assert_eq!(p.seed, 9);
        // Unset keys keep the default-plan values.
        assert_eq!(p.cursed_prob, FaultPlan::default().cursed_prob);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("transient").is_err());
        assert!(FaultPlan::parse("transient=abc").is_err());
        assert!(FaultPlan::parse("warp_drive=1").is_err());
    }

    #[test]
    fn draws_are_pure_functions() {
        let p = FaultPlan::default();
        for sig in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            for attempt in 0..4 {
                assert_eq!(p.draw(sig, attempt), p.draw(sig, attempt));
            }
        }
    }

    #[test]
    fn cursed_is_sticky_and_rare() {
        let p = FaultPlan {
            cursed_prob: 0.01,
            ..FaultPlan::default()
        };
        let mut cursed = 0;
        for sig in 0..10_000u64 {
            if p.is_cursed(sig) {
                cursed += 1;
                // Sticky: every attempt sees the curse.
                for attempt in 0..8 {
                    assert_eq!(p.draw(sig, attempt), FaultOutcome::Cursed);
                }
            }
        }
        assert!((50..200).contains(&cursed), "cursed rate off: {cursed}");
    }

    #[test]
    fn inert_plan_always_draws_clean() {
        let p = FaultPlan::none();
        for sig in 0..1000u64 {
            assert_eq!(p.draw(sig, 0), FaultOutcome::Ok(1.0));
        }
    }

    #[test]
    fn fault_rates_match_probabilities() {
        let p = FaultPlan {
            transient_prob: 0.10,
            timeout_prob: 0.02,
            cursed_prob: 0.0,
            ..FaultPlan::default()
        };
        let (mut transient, mut timeout) = (0u32, 0u32);
        for sig in 0..20_000u64 {
            match p.draw(sig, 0) {
                FaultOutcome::Transient => transient += 1,
                FaultOutcome::Timeout => timeout += 1,
                _ => {}
            }
        }
        assert!((1700..2300).contains(&transient), "transient {transient}");
        assert!((300..550).contains(&timeout), "timeout {timeout}");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = FaultPlan::default();
        assert_eq!(p.backoff_seconds(0), 0.0);
        assert_eq!(p.backoff_seconds(1), 0.1);
        assert_eq!(p.backoff_seconds(2), 0.2);
        assert_eq!(p.backoff_seconds(3), 0.4);
        assert_eq!(p.backoff_seconds(40), 5.0);
    }

    #[test]
    fn terminal_fault_classifier() {
        assert!(is_terminal_fault("injected fault: cursed hardware"));
        assert!(is_terminal_fault(
            "injected fault: gave up after 3 retries (transient)"
        ));
        assert!(!is_terminal_fault("injected fault: transient"));
        assert!(!is_terminal_fault("lowering error: bad split"));
    }
}
