//! Analytical machine model: estimates the execution time of a lowered
//! program on a [`HardwareTarget`].
//!
//! This is the repo's substitute for compiling with LLVM/CUDA and running on
//! real hardware. The model is a classical tiled-roofline analysis: per
//! innermost statement it combines
//!
//! - peak compute throughput, derated by vectorization efficiency (lane
//!   quantization, gather/scatter penalties) and by reduction-chain ILP
//!   (dependent FMA latency vs. independent accumulators),
//! - a multi-level cache traffic model (footprint-based tile-fit analysis
//!   that charges each cache boundary crossing against its bandwidth),
//! - loop maintenance overhead (removed by unrolling, amortized by
//!   vectorization),
//! - multi-core parallel scaling with launch/task overheads and shared
//!   memory bandwidth, or a GPU SM/occupancy/coalescing model.
//!
//! It is deterministic: the same program always takes the same time, so it
//! can serve as the "ground truth hardware" that the learned cost model of
//! the paper approximates.

use serde::{Deserialize, Serialize};
use tensor_ir::analysis::{AccessType, StoreAnalysis};
use tensor_ir::{Annotation, Program};

use crate::target::{HardwareTarget, TargetKind};

/// Cache utilization factor: conflict misses mean only a fraction of the
/// nominal capacity is usable by a tile.
const CACHE_UTIL: f64 = 0.7;

/// Per-store cost breakdown (useful for debugging and EXPERIMENTS.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreCost {
    /// Compute-bound time, seconds.
    pub compute_s: f64,
    /// L2-boundary traffic time, seconds.
    pub l2_s: f64,
    /// L3-boundary traffic time, seconds.
    pub l3_s: f64,
    /// DRAM traffic time, seconds.
    pub dram_s: f64,
    /// Loop/parallel/kernel overheads, seconds.
    pub overhead_s: f64,
    /// Final (roofline) time for this statement, seconds.
    pub total_s: f64,
    /// Parallel hardware units used.
    pub units_used: f64,
}

/// Estimates the execution time of a program in seconds.
pub fn estimate_seconds(program: &Program, target: &HardwareTarget) -> f64 {
    estimate_detailed(program, target)
        .iter()
        .map(|c| c.total_s)
        .sum::<f64>()
        + 1e-7
}

/// Estimates the program and returns per-store breakdowns.
pub fn estimate_detailed(program: &Program, target: &HardwareTarget) -> Vec<StoreCost> {
    let stores = tensor_ir::analysis::analyze(program);
    stores
        .iter()
        .map(|s| match target.kind {
            TargetKind::Cpu => cpu_store_cost(s, target),
            TargetKind::Gpu => gpu_store_cost(s, target),
        })
        .collect()
}

/// Throughput in GFLOP/s for a program on a target (for reports).
pub fn gflops(program: &Program, target: &HardwareTarget) -> f64 {
    program.flop_count() / estimate_seconds(program, target) / 1e9
}

/// Human-readable cost breakdown: one line per innermost statement with
/// its bound (compute / L2 / L3 / DRAM), useful for understanding why a
/// schedule is slow.
pub fn explain(program: &Program, target: &HardwareTarget) -> String {
    use std::fmt::Write as _;
    let costs = estimate_detailed(program, target);
    let analyses = tensor_ir::analysis::analyze(program);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>10} {:>8} {:<8}",
        "statement", "time", "units", "bound", ""
    );
    for (c, a) in costs.iter().zip(&analyses) {
        let name = &program.dag.nodes[a.buffer].name;
        let bound = [
            ("compute", c.compute_s),
            ("L2", c.l2_s),
            ("L3", c.l3_s),
            ("DRAM", c.dram_s),
        ]
        .into_iter()
        .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
        .map(|(n, _)| n)
        .unwrap_or("compute");
        let _ = writeln!(
            out,
            "{:<12} {:>9.3} us {:>10.0} {:>8} {}",
            name,
            c.total_s * 1e6,
            c.units_used,
            bound,
            if a.reduce.is_some() { "(reduce)" } else { "" }
        );
    }
    let total: f64 = costs.iter().map(|c| c.total_s).sum();
    let _ = writeln!(out, "total: {:.3} us", total * 1e6);
    out
}

fn cpu_store_cost(s: &StoreAnalysis, t: &HardwareTarget) -> StoreCost {
    let trips = s.trip_count();
    let flops = s.flops_per_iter() * trips;

    // ---- Vectorization ----
    let (vec_speedup, vec_level) = vector_speedup(s, t);

    // ---- Reduction ILP ----
    let red_factor = if s.reduce.is_some() {
        let indep = s.independent_accumulators();
        (indep / t.fma_latency).min(1.0).max(1.0 / t.fma_latency)
    } else {
        1.0
    };

    // Loads per iteration that hit L1 still cost issue slots; add a small
    // per-access cost so pure load-bound element-wise ops are not free.
    let access_cycles_per_iter =
        s.accesses.iter().map(|a| a.count as f64).sum::<f64>() * 0.5 / vec_speedup.max(1.0);
    // Select guards folded by unrolling eliminate dead work (T2D's zero
    // multiplications).
    let fold = s.guard_fold_factor();
    let flop_cycles = flops * fold / (t.flops_per_cycle * vec_speedup * red_factor);
    let issue_cycles = access_cycles_per_iter * trips * fold;
    let compute_cycles = flop_cycles.max(issue_cycles);

    // ---- Loop overhead ----
    let overhead_cycles = loop_overhead_cycles(s, t, vec_level);

    // ---- Memory traffic ----
    let (l2_bytes, l3_bytes, dram_bytes) = memory_traffic(s, t);

    // ---- Parallel scaling ----
    let preq = s.parallel_extent() as f64;
    let units = preq.min(t.num_cores as f64).max(1.0);
    // Load balance: quantization of parallel chunks over cores.
    let balance = if preq > 1.0 {
        preq / ((preq / units).ceil() * units)
    } else {
        1.0
    };
    // Task overhead is charged per work chunk; runtimes chunk large
    // parallel loops, so the count saturates independent of core count.
    let par_overhead = if preq > 1.0 {
        t.parallel_launch_s + preq.min(64.0) * t.parallel_task_s
    } else {
        0.0
    };

    let core_hz = t.freq_ghz * 1e9;
    let compute_s = (compute_cycles + overhead_cycles) / core_hz / (units * balance);
    let l2_s = l2_bytes / (t.l2_bw_gbs * 1e9) / (units * balance);
    let l3_s = if t.l3_bw_gbs > 0.0 {
        l3_bytes / (t.l3_bw_gbs * 1e9)
    } else {
        0.0
    };
    let dram_s = dram_bytes / (t.mem_bw_gbs * 1e9);
    let total_s = compute_s.max(l2_s).max(l3_s).max(dram_s) + par_overhead;
    StoreCost {
        compute_s,
        l2_s,
        l3_s,
        dram_s,
        overhead_s: par_overhead,
        total_s,
        units_used: units,
    }
}

/// Vector speedup of the statement and the vectorized loop level (if any).
fn vector_speedup(s: &StoreAnalysis, t: &HardwareTarget) -> (f64, Option<usize>) {
    let Some((lvl, extent)) = s.vectorized_level() else {
        return (1.0, None);
    };
    let lanes = t.vector_lanes as f64;
    let e = extent as f64;
    // Lane quantization: an extent of 12 on 8 lanes needs 2 vector ops, so
    // the speedup over 12 scalar ops is 6; extents below the lane count
    // still finish in one (partially masked) op.
    let mut speedup = e / (e / lanes).ceil();
    // Access patterns relative to the vectorized loop.
    for a in &s.accesses {
        let stride = a.strides[lvl].abs();
        match a.access {
            AccessType::Read => {
                if stride > 1 {
                    // Gather.
                    speedup *= 0.35;
                }
            }
            AccessType::Write | AccessType::ReadWrite => {
                if stride > 1 {
                    // Scatter: mostly defeats vectorization.
                    speedup *= 0.2;
                }
            }
        }
    }
    (speedup.max(1.0), Some(lvl))
}

/// Total loop-maintenance cycles for the statement's nest.
fn loop_overhead_cycles(s: &StoreAnalysis, t: &HardwareTarget, vec_level: Option<usize>) -> f64 {
    let mut cycles = 0.0;
    let mut outer: f64 = 1.0;
    // Body size below each level, for pragma-driven implicit unrolling.
    let mut unrolled_body = 1.0;
    for (i, l) in s.loops.iter().enumerate().rev() {
        if matches!(vec_level, Some(v) if i > v) {
            // Loops inside the vectorized loop do not exist at runtime
            // (they would have been unrolled into the vector body).
            continue;
        }
        unrolled_body *= l.extent as f64;
        let implicit_unroll = s.pragma_unroll > 0 && unrolled_body <= s.pragma_unroll as f64;
        if l.ann == Annotation::Unroll || implicit_unroll {
            continue; // no maintenance cost; body replicated
        }
        if Some(i) == vec_level {
            // One maintenance op per vector, not per element.
            continue;
        }
        let _ = outer;
        cycles += product_through(s, i) * t.loop_overhead_cycles;
        outer *= l.extent as f64;
    }
    // Excessive unrolling blows up the instruction cache.
    let unroll_amount: f64 = s
        .loops
        .iter()
        .filter(|l| l.ann == Annotation::Unroll)
        .map(|l| l.extent as f64)
        .product();
    if unroll_amount * s.flops_per_iter() > 4096.0 {
        cycles += s.trip_count() * 0.5; // icache / decode pressure
    }
    cycles
}

/// Number of iterations executed by loop level `i` (product of extents of
/// levels `0..=i`).
fn product_through(s: &StoreAnalysis, i: usize) -> f64 {
    s.loops[..=i].iter().map(|l| l.extent as f64).product()
}

/// Footprint-based traffic estimate: bytes crossing the L1, L2 and L3
/// boundaries over the whole statement execution.
fn memory_traffic(s: &StoreAnalysis, t: &HardwareTarget) -> (f64, f64, f64) {
    let line = t.line_bytes as f64;
    let line_elems = t.line_elems();
    let crossing = |cap_bytes: i64| -> f64 {
        if cap_bytes <= 0 {
            return crossing_at_level(s, 0, line, line_elems);
        }
        let cap = cap_bytes as f64 * CACHE_UTIL;
        // Find the outermost level whose sub-nest footprint fits.
        let mut fit = s.loops.len(); // innermost statement always "fits"
        for lvl in (0..=s.loops.len()).rev() {
            let fp: f64 = s
                .accesses
                .iter()
                .map(|a| a.touched_lines(lvl, &s.loops, line_elems) * line)
                .sum();
            if fp <= cap {
                fit = lvl;
            } else {
                break;
            }
        }
        crossing_at_level(s, fit, line, line_elems)
    };
    let l2 = crossing(t.l1_bytes);
    let l3 = crossing(t.l2_bytes);
    let dram = if t.l3_bytes > 0 {
        crossing(t.l3_bytes)
    } else {
        l3
    };
    (l2, l3, dram)
}

/// Bytes crossing a cache boundary when the sub-nest at `fit` is resident:
/// each re-entry of the sub-nest with a changed region refetches it.
fn crossing_at_level(s: &StoreAnalysis, fit: usize, line: f64, line_elems: i64) -> f64 {
    s.accesses
        .iter()
        .map(|a| {
            let mut outer_variant: f64 = 1.0;
            for (i, l) in s.loops[..fit].iter().enumerate() {
                if a.strides[i] != 0 {
                    outer_variant *= l.extent as f64;
                }
            }
            let lines = a.touched_lines(fit, &s.loops, line_elems);
            let write_factor = match a.access {
                AccessType::Read => 1.0,
                AccessType::Write => 1.0,
                AccessType::ReadWrite => 2.0, // read + write back
            };
            (outer_variant * lines * line * write_factor)
                .min(2.0 * a.buffer_elems as f64 * 4.0 * outer_variant.sqrt())
        })
        .sum()
}

fn gpu_store_cost(s: &StoreAnalysis, t: &HardwareTarget) -> StoreCost {
    let trips = s.trip_count();
    let flops = s.flops_per_iter() * trips;
    let blocks: f64 = s
        .loops
        .iter()
        .filter(|l| l.ann == Annotation::BindBlock)
        .map(|l| l.extent as f64)
        .product();
    let threads: f64 = s
        .loops
        .iter()
        .filter(|l| l.ann == Annotation::BindThread)
        .map(|l| l.extent as f64)
        .product();
    let total_threads = blocks * threads;
    // Warp quantization.
    let warp = 32.0;
    let warp_eff = if threads > 0.0 {
        threads / ((threads / warp).ceil() * warp)
    } else {
        1.0 / warp
    };
    // Occupancy over the whole device.
    let sms = t.num_cores as f64;
    let occupancy = (total_threads / (sms * t.max_threads_per_sm as f64 * 0.25))
        .min(1.0)
        .max(1.0 / (sms * warp));
    // Coalescing: stride of each access w.r.t. the innermost thread-bound
    // loop (threadIdx.x in CUDA terms).
    let tx = s
        .loops
        .iter()
        .rposition(|l| l.ann == Annotation::BindThread);
    let mut coalesce = 1.0f64;
    if let Some(tx) = tx {
        for a in &s.accesses {
            let stride = a.strides[tx].abs();
            if stride > 1 {
                coalesce = coalesce.min(1.0 / (stride.min(32) as f64).sqrt());
            }
        }
    } else {
        coalesce = 1.0 / 8.0;
    }
    // Reduction ILP matters on GPU too (each thread runs its own chain).
    let red_factor = if s.reduce.is_some() {
        (s.independent_accumulators() / t.fma_latency)
            .min(1.0)
            .max(1.0 / t.fma_latency)
    } else {
        1.0
    };
    let peak = t.core_flops() * sms;
    let compute_s = flops * s.guard_fold_factor() / (peak * occupancy * warp_eff * red_factor);
    // Memory: L2-fit model over the per-block sub-nest.
    let (_, l3_bytes, dram_bytes) = memory_traffic(s, t);
    let l2_s = l3_bytes / (t.l2_bw_gbs * 1e9);
    let dram_s = dram_bytes / (t.mem_bw_gbs * 1e9) / coalesce;
    let overhead = t.kernel_launch_s;
    let total_s = compute_s.max(l2_s).max(dram_s) + overhead;
    StoreCost {
        compute_s,
        l2_s,
        l3_s: 0.0,
        dram_s,
        overhead_s: overhead,
        total_s,
        units_used: (total_threads / warp).min(sms * t.max_threads_per_sm as f64 / warp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tensor_ir::{lower, DagBuilder, Expr, Reducer, State, Step};

    fn matmul_dag(n: i64) -> Arc<tensor_ir::ComputeDag> {
        let mut b = DagBuilder::new();
        let a = b.placeholder("A", &[n, n]);
        let w = b.constant("B", &[n, n]);
        b.compute_reduce("C", &[n, n], &[n], Reducer::Sum, |ax| {
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
        });
        Arc::new(b.build().unwrap())
    }

    fn naive_time(n: i64, t: &HardwareTarget) -> f64 {
        let st = State::new(matmul_dag(n));
        estimate_seconds(&lower(&st).unwrap(), t)
    }

    #[test]
    fn bigger_problems_take_longer() {
        let t = HardwareTarget::intel_20core();
        assert!(naive_time(256, &t) < naive_time(512, &t));
        assert!(naive_time(512, &t) < naive_time(1024, &t));
    }

    fn scheduled_matmul_time(steps: &[Step], t: &HardwareTarget) -> f64 {
        let st = State::replay(matmul_dag(512), steps).unwrap();
        estimate_seconds(&lower(&st).unwrap(), t)
    }

    #[test]
    fn parallel_beats_serial() {
        let t = HardwareTarget::intel_20core();
        let serial = scheduled_matmul_time(&[], &t);
        let parallel = scheduled_matmul_time(
            &[Step::Annotate {
                node: "C".into(),
                iter: "i".into(),
                ann: Annotation::Parallel,
            }],
            &t,
        );
        assert!(
            parallel < serial,
            "parallel {parallel} should beat serial {serial}"
        );
    }

    #[test]
    fn vectorize_beats_scalar() {
        let t = HardwareTarget::intel_20core();
        let scalar = scheduled_matmul_time(&[], &t);
        // Vectorizing j (stride-1 for B and C) should speed things up.
        let vectorized = scheduled_matmul_time(
            &[
                Step::Split {
                    node: "C".into(),
                    iter: "j".into(),
                    lengths: vec![8],
                },
                Step::Reorder {
                    node: "C".into(),
                    order: vec!["i".into(), "j.0".into(), "k".into(), "j.1".into()],
                },
                Step::Annotate {
                    node: "C".into(),
                    iter: "j.1".into(),
                    ann: Annotation::Vectorize,
                },
            ],
            &t,
        );
        assert!(
            vectorized < scalar,
            "vectorized {vectorized} should beat scalar {scalar}"
        );
    }

    fn memory_seconds(steps: &[Step], t: &HardwareTarget) -> f64 {
        let st = State::replay(matmul_dag(512), steps).unwrap();
        estimate_detailed(&lower(&st).unwrap(), t)
            .iter()
            .map(|c| c.l2_s + c.l3_s + c.dram_s)
            .sum()
    }

    #[test]
    fn tiling_reduces_memory_time() {
        let t = HardwareTarget::intel_20core();
        // Tile i and j by 32, k by 32, reorder so that a 32x32 tile of C is
        // computed with k.0 outside.
        let tiled = memory_seconds(
            &[
                Step::Split {
                    node: "C".into(),
                    iter: "i".into(),
                    lengths: vec![32],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "j".into(),
                    lengths: vec![32],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "k".into(),
                    lengths: vec![32],
                },
                Step::Reorder {
                    node: "C".into(),
                    order: vec![
                        "i.0".into(),
                        "j.0".into(),
                        "k.0".into(),
                        "i.1".into(),
                        "k.1".into(),
                        "j.1".into(),
                    ],
                },
            ],
            &t,
        );
        let naive = memory_seconds(&[], &t);
        assert!(tiled < naive, "tiled {tiled} should beat naive {naive}");
    }

    #[test]
    fn full_optimization_approaches_plausible_throughput() {
        // SSRSRS-style schedule: parallel outer, vectorized inner, unrolled
        // accumulators. The model should land in a plausible GFLOP/s band
        // (not slower than 5% of peak, not faster than peak).
        let t = HardwareTarget::intel_20core();
        let steps = vec![
            Step::Split {
                node: "C".into(),
                iter: "i".into(),
                lengths: vec![4, 8, 4],
            },
            Step::Split {
                node: "C".into(),
                iter: "j".into(),
                lengths: vec![2, 4, 16],
            },
            Step::Split {
                node: "C".into(),
                iter: "k".into(),
                lengths: vec![16],
            },
            Step::Reorder {
                node: "C".into(),
                order: vec![
                    "i.0".into(),
                    "j.0".into(),
                    "i.1".into(),
                    "j.1".into(),
                    "k.0".into(),
                    "i.2".into(),
                    "j.2".into(),
                    "k.1".into(),
                    "i.3".into(),
                    "j.3".into(),
                ],
            },
            Step::Fuse {
                node: "C".into(),
                iters: vec!["i.0".into(), "j.0".into(), "i.1".into(), "j.1".into()],
            },
            Step::Annotate {
                node: "C".into(),
                iter: "i.0@j.0@i.1@j.1".into(),
                ann: Annotation::Parallel,
            },
            Step::Annotate {
                node: "C".into(),
                iter: "i.3".into(),
                ann: Annotation::Unroll,
            },
            Step::Annotate {
                node: "C".into(),
                iter: "j.3".into(),
                ann: Annotation::Vectorize,
            },
        ];
        let st = State::replay(matmul_dag(512), &steps).unwrap();
        let prog = lower(&st).unwrap();
        let g = gflops(&prog, &t);
        let peak = t.core_vector_flops() * t.num_cores as f64 / 1e9;
        assert!(g > 0.05 * peak, "gflops {g} vs peak {peak}");
        assert!(g <= peak, "gflops {g} vs peak {peak}");
        // And it must beat the naive program by a wide margin.
        let naive = naive_time(512, &t);
        let opt = estimate_seconds(&prog, &t);
        assert!(opt * 20.0 < naive, "opt {opt} naive {naive}");
    }

    #[test]
    fn explain_names_the_bound() {
        let t = HardwareTarget::intel_20core();
        let st = State::new(matmul_dag(256));
        let prog = lower(&st).unwrap();
        let text = explain(&prog, &t);
        assert!(text.contains("C"), "{text}");
        assert!(text.contains("total:"), "{text}");
        assert!(
            text.contains("compute") || text.contains("DRAM") || text.contains("L2"),
            "{text}"
        );
    }

    #[test]
    fn arm_is_slower_than_intel() {
        let intel = naive_time(256, &HardwareTarget::intel_20core());
        let arm = naive_time(256, &HardwareTarget::arm_4core());
        assert!(arm > intel);
    }

    #[test]
    fn gpu_needs_thread_bindings() {
        let t = HardwareTarget::nvidia_v100();
        let unbound = scheduled_matmul_time(&[], &t);
        let bound = scheduled_matmul_time(
            &[
                Step::Split {
                    node: "C".into(),
                    iter: "i".into(),
                    lengths: vec![16],
                },
                Step::Split {
                    node: "C".into(),
                    iter: "j".into(),
                    lengths: vec![64],
                },
                Step::Reorder {
                    node: "C".into(),
                    order: vec![
                        "i.0".into(),
                        "j.0".into(),
                        "i.1".into(),
                        "j.1".into(),
                        "k".into(),
                    ],
                },
                Step::Annotate {
                    node: "C".into(),
                    iter: "i.0".into(),
                    ann: Annotation::BindBlock,
                },
                Step::Annotate {
                    node: "C".into(),
                    iter: "j.1".into(),
                    ann: Annotation::BindThread,
                },
            ],
            &t,
        );
        assert!(bound < unbound, "bound {bound} vs unbound {unbound}");
    }
}
