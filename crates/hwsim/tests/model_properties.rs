//! Property tests on the analytical machine model: the simulated hardware
//! must respond monotonically to resources, or the search would chase
//! artifacts.

use std::sync::Arc;

use hwsim::{estimate_seconds, HardwareTarget};
use proptest::prelude::*;
use tensor_ir::{lower, Annotation, DagBuilder, Expr, Reducer, State, Step};

fn matmul_state(n: i64, steps: &[Step]) -> State {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[n, n]);
    let w = b.placeholder("B", &[n, n]);
    b.compute_reduce("C", &[n, n], &[n], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    let dag = Arc::new(b.build().unwrap());
    State::replay(dag, steps).unwrap()
}

fn parallel_vectorized(n: i64) -> State {
    matmul_state(
        n,
        &[
            Step::Split {
                node: "C".into(),
                iter: "j".into(),
                lengths: vec![8],
            },
            Step::Reorder {
                node: "C".into(),
                order: vec!["i".into(), "j.0".into(), "k".into(), "j.1".into()],
            },
            Step::Annotate {
                node: "C".into(),
                iter: "i".into(),
                ann: Annotation::Parallel,
            },
            Step::Annotate {
                node: "C".into(),
                iter: "j.1".into(),
                ann: Annotation::Vectorize,
            },
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn more_cores_never_slower(extra in 1u32..64) {
        let base = HardwareTarget::intel_20core();
        let more = HardwareTarget { num_cores: base.num_cores + extra, ..base.clone() };
        let prog = lower(&parallel_vectorized(256)).unwrap();
        let t_base = estimate_seconds(&prog, &base);
        let t_more = estimate_seconds(&prog, &more);
        prop_assert!(t_more <= t_base * 1.0001, "{t_more} vs {t_base}");
    }

    #[test]
    fn wider_vectors_never_slower(lanes in prop::sample::select(vec![4u32, 8, 16, 32])) {
        let base = HardwareTarget { vector_lanes: 4, ..HardwareTarget::intel_20core() };
        let wide = HardwareTarget { vector_lanes: lanes, ..base.clone() };
        let prog = lower(&parallel_vectorized(256)).unwrap();
        prop_assert!(
            estimate_seconds(&prog, &wide) <= estimate_seconds(&prog, &base) * 1.0001
        );
    }

    #[test]
    fn bigger_caches_never_slower(factor in prop::sample::select(vec![2i64, 4, 8])) {
        let base = HardwareTarget::intel_20core();
        let big = HardwareTarget {
            l1_bytes: base.l1_bytes * factor,
            l2_bytes: base.l2_bytes * factor,
            l3_bytes: base.l3_bytes * factor,
            ..base.clone()
        };
        let prog = lower(&matmul_state(512, &[])).unwrap();
        prop_assert!(
            estimate_seconds(&prog, &big) <= estimate_seconds(&prog, &base) * 1.0001
        );
    }

    #[test]
    fn higher_frequency_never_slower(ghz in 1.0f64..6.0) {
        let base = HardwareTarget::intel_20core();
        let fast = HardwareTarget { freq_ghz: base.freq_ghz + ghz, ..base.clone() };
        let prog = lower(&parallel_vectorized(128)).unwrap();
        prop_assert!(
            estimate_seconds(&prog, &fast) <= estimate_seconds(&prog, &base) * 1.0001
        );
    }

    #[test]
    fn time_scales_with_problem_size(n in prop::sample::select(vec![64i64, 128, 256])) {
        let t = HardwareTarget::intel_20core();
        let small = estimate_seconds(&lower(&matmul_state(n, &[])).unwrap(), &t);
        let big = estimate_seconds(&lower(&matmul_state(n * 2, &[])).unwrap(), &t);
        // Doubling n multiplies work by 8; allow wide tolerance for cache
        // effects but demand clear growth.
        prop_assert!(big > small * 3.0, "{big} vs {small}");
    }
}

#[test]
fn estimates_are_strictly_positive_and_finite() {
    let t = HardwareTarget::intel_20core();
    for n in [2i64, 16, 64] {
        let prog = lower(&matmul_state(n, &[])).unwrap();
        let s = estimate_seconds(&prog, &t);
        assert!(s.is_finite() && s > 0.0);
    }
}

#[test]
fn gpu_and_cpu_models_rank_big_parallel_work_differently() {
    // A well-parallelized large matmul should be faster on the V100 model
    // than on the ARM model.
    let prog = lower(&parallel_vectorized(512)).unwrap();
    let arm = estimate_seconds(&prog, &HardwareTarget::arm_4core());
    let intel = estimate_seconds(&prog, &HardwareTarget::intel_20core());
    assert!(intel < arm);
}
