//! Property tests on the deterministic fault injector: whatever the plan,
//! the measurer must bound its retries, cursed hardware must stay cursed,
//! and a zero-probability plan must be indistinguishable from no injector
//! at all.

use std::sync::Arc;

use hwsim::{FaultOutcome, FaultPlan, HardwareTarget, Measurer};
use proptest::prelude::*;
use tensor_ir::{DagBuilder, Expr, Reducer, State};

fn matmul_state(n: i64) -> State {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[n, n]);
    let w = b.placeholder("B", &[n, n]);
    b.compute_reduce("C", &[n, n], &[n], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    State::new(Arc::new(b.build().unwrap()))
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.9,
        0.0f64..0.5,
        0.0f64..0.3,
        0.0f64..0.5,
        0u32..6,
        any::<u64>(),
    )
        .prop_map(
            |(transient, timeout, noise, cursed, retries, seed)| FaultPlan {
                transient_prob: transient,
                timeout_prob: timeout,
                noise,
                cursed_prob: cursed,
                max_retries: retries,
                timeout_seconds: 1.0,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The injected-attempt sequence terminates within the retry cap: the
    /// measurer consults `draw` for at most `max_retries + 1` attempts, and
    /// the `measure/retries` counter per measurement never exceeds the cap.
    #[test]
    fn retries_never_exceed_cap(plan in arb_plan(), sig in any::<u64>()) {
        let mut attempts = 0u32;
        for attempt in 0..=plan.max_retries {
            attempts = attempt + 1;
            match plan.draw(sig, attempt) {
                FaultOutcome::Ok(_) | FaultOutcome::Cursed => break,
                FaultOutcome::Transient | FaultOutcome::Timeout => {}
            }
        }
        prop_assert!(attempts <= plan.max_retries + 1);

        let tel = telemetry::Telemetry::with_metrics();
        let mut m = Measurer::with_faults(HardwareTarget::intel_20core(), plan.clone());
        m.set_telemetry(tel.clone());
        m.measure(&matmul_state(32));
        prop_assert!(tel.counter_value("measure/retries") <= plan.max_retries as u64);
    }

    /// Cursed hardware is sticky: the verdict for a signature never changes,
    /// and a cursed signature draws `Cursed` at every attempt — quarantine
    /// decisions are monotone.
    #[test]
    fn cursed_is_sticky(plan in arb_plan(), sig in any::<u64>()) {
        let verdict = plan.is_cursed(sig);
        for _ in 0..4 {
            prop_assert_eq!(plan.is_cursed(sig), verdict);
        }
        if verdict {
            for attempt in 0..=plan.max_retries {
                prop_assert!(matches!(plan.draw(sig, attempt), FaultOutcome::Cursed));
            }
        }
    }

    /// Draws are pure functions of (plan, signature, attempt): re-asking
    /// never changes the answer, so parallel measurement order is
    /// irrelevant.
    #[test]
    fn draws_are_deterministic(plan in arb_plan(), sig in any::<u64>(), attempt in 0u32..8) {
        let a = plan.draw(sig, attempt);
        let b = plan.draw(sig, attempt);
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// A zero-probability plan is inert: measurements are byte-identical to
    /// a measurer with no injector installed, and no simulated time is
    /// charged.
    #[test]
    fn zero_probability_plan_is_byte_identical(seed in any::<u64>(), n in 8i64..64) {
        let inert = FaultPlan { seed, ..FaultPlan::none() };
        prop_assert!(inert.is_inert());
        let state = matmul_state(n);
        let mut plain = Measurer::new(HardwareTarget::intel_20core());
        let mut faulty = Measurer::with_faults(HardwareTarget::intel_20core(), inert);
        let a = plain.measure(&state);
        let b = faulty.measure(&state);
        prop_assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
        prop_assert_eq!(a.error, b.error);
        prop_assert_eq!(faulty.sim_fault_nanos(), 0);
    }
}
