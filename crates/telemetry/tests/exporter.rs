//! End-to-end exporter test: serve a live registry on an ephemeral port,
//! scrape it over a real TCP connection, and check that the Prometheus
//! exposition and the JSON status report agree with a direct snapshot.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use telemetry::export::{parse_exposition, serve, ExportOptions, StatusReport};
use telemetry::Telemetry;

/// Minimal HTTP GET against the exporter; returns (status code, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("send request");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let text = String::from_utf8_lossy(&response);
    let (head, body) = text.split_once("\r\n\r\n").expect("response has a head");
    let code: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line has a code");
    (code, body.to_string())
}

fn send_raw(addr: &str, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    String::from_utf8_lossy(&response).into_owned()
}

/// A registry populated the way a small tuning run would populate it.
fn seeded_telemetry() -> Telemetry {
    let tel = Telemetry::with_metrics();
    tel.incr("measure/valid", 40);
    tel.incr("measure/failed", 2);
    tel.incr("measure/cache_hits", 30);
    tel.incr("measure/cache_misses", 12);
    tel.incr("measure/retries", 3);
    tel.gauge_set("progress/task/GMM:C/round", 4.0);
    tel.gauge_set("progress/task/GMM:C/trials_used", 40.0);
    tel.gauge_set("progress/task/GMM:C/trials_budget", 64.0);
    tel.gauge_set("progress/task/GMM:C/best_seconds", 0.002);
    tel.gauge_set("progress/task/GMM:C/best_gflops", 123.5);
    tel.observe("phase/evolution", 0.5);
    tel.observe("phase/evolution", 1.5);
    tel
}

#[test]
fn metrics_endpoint_matches_direct_snapshot() {
    let tel = seeded_telemetry();
    let exporter = serve(&tel, "127.0.0.1:0", ExportOptions::default()).expect("bind port 0");
    let addr = exporter.local_addr().to_string();

    let (code, body) = http_get(&addr, "/metrics");
    assert_eq!(code, 200);
    let exposition = parse_exposition(&body).expect("exporter output must parse");

    // Every counter and gauge in a direct snapshot appears with the same
    // value under its Prometheus name.
    let snap = tel.live_snapshot().expect("metrics enabled");
    for (name, value) in &snap.metrics.counters {
        let key = format!("{}_total", telemetry::export::prometheus_name(name));
        assert_eq!(
            exposition.value(&key),
            Some(*value as f64),
            "counter {name} should be exported as {key}"
        );
    }
    for (name, value) in &snap.metrics.gauges {
        let key = telemetry::export::prometheus_name(name);
        assert_eq!(exposition.value(&key), Some(*value), "gauge {name} → {key}");
    }
    // Histograms appear as summaries with count/sum/quantiles.
    assert_eq!(exposition.value("ansor_phase_evolution_count"), Some(2.0));
    assert_eq!(exposition.value("ansor_phase_evolution_sum"), Some(2.0));
    assert!(body.contains("ansor_phase_evolution{quantile=\"0.5\"}"));
    // Uptime gauge is present and sane.
    let uptime = exposition.value("ansor_uptime_seconds").expect("uptime");
    assert!((0.0..3600.0).contains(&uptime));

    exporter.shutdown();
}

#[test]
fn status_endpoint_reports_task_progress() {
    let tel = seeded_telemetry();
    let exporter = serve(&tel, "127.0.0.1:0", ExportOptions::default()).expect("bind port 0");
    let addr = exporter.local_addr().to_string();

    let (code, body) = http_get(&addr, "/status");
    assert_eq!(code, 200);
    let report: StatusReport = serde_json::from_str(&body).expect("status JSON deserializes");
    assert!(report.healthy);
    let task = report.tasks.get("GMM:C").expect("task parsed from gauges");
    assert_eq!(task.round, 4.0);
    assert_eq!(task.trials_used, 40.0);
    assert_eq!(task.trials_budget, Some(64.0));
    assert_eq!(task.best_seconds, Some(0.002));
    assert_eq!(task.best_gflops, Some(123.5));
    let cache = report.caches.get("measure").expect("measure cache pair");
    assert_eq!(cache.hits, 30);
    assert_eq!(cache.misses, 12);
    assert!((cache.hit_rate - 30.0 / 42.0).abs() < 1e-12);
    assert_eq!(report.faults.retries, 3);
    assert!(report.throughput.trials_per_second > 0.0);

    // A second scrape carries a recent (delta-based) rate.
    tel.incr("measure/valid", 1);
    let (_, body2) = http_get(&addr, "/status");
    let report2: StatusReport = serde_json::from_str(&body2).expect("second status");
    assert!(report2.throughput.recent_trials_per_second.is_some());

    exporter.shutdown();
}

#[test]
fn healthz_flips_unhealthy_on_stall_and_recovers_on_heartbeat() {
    let tel = seeded_telemetry();
    let opts = ExportOptions {
        stall_window_seconds: 0.2,
        samplers: Vec::new(),
    };
    let exporter = serve(&tel, "127.0.0.1:0", opts).expect("bind port 0");
    let addr = exporter.local_addr().to_string();

    let (code, body) = http_get(&addr, "/healthz");
    assert_eq!(code, 200, "fresh run is healthy: {body}");
    assert!(body.contains("\"healthy\":true"));

    // No counter/heartbeat movement for longer than the window: unhealthy.
    std::thread::sleep(Duration::from_millis(400));
    let (code, body) = http_get(&addr, "/healthz");
    assert_eq!(code, 503, "stalled run reads unhealthy: {body}");
    assert!(body.contains("\"healthy\":false"));

    // Any heartbeat tick (the measurer bumps this each attempt) recovers it.
    tel.gauge_add("measure/heartbeat", 1.0);
    let (code, body) = http_get(&addr, "/healthz");
    assert_eq!(code, 200, "heartbeat recovers health: {body}");

    exporter.shutdown();
}

#[test]
fn unknown_paths_and_methods_are_rejected() {
    let tel = seeded_telemetry();
    let exporter = serve(&tel, "127.0.0.1:0", ExportOptions::default()).expect("bind port 0");
    let addr = exporter.local_addr().to_string();

    let (code, _) = http_get(&addr, "/nope");
    assert_eq!(code, 404);
    let response = send_raw(
        &addr,
        &format!("POST /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    );
    assert!(response.starts_with("HTTP/1.1 405"), "got: {response}");
    // Query strings are ignored for routing.
    let (code, _) = http_get(&addr, "/healthz?verbose=1");
    assert_eq!(code, 200);

    exporter.shutdown();
}

#[test]
fn shutdown_joins_and_frees_the_port() {
    let tel = seeded_telemetry();
    let exporter = serve(&tel, "127.0.0.1:0", ExportOptions::default()).expect("bind port 0");
    let addr = exporter.local_addr();
    exporter.shutdown();
    // The listener is closed once shutdown returns; rebinding must succeed.
    let rebound = std::net::TcpListener::bind(addr);
    assert!(rebound.is_ok(), "port should be free after shutdown");
}
