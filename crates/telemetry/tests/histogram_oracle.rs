//! Percentile correctness of the log-bucketed [`telemetry::Histogram`],
//! checked against an exact sorted-vector oracle.
//!
//! The histogram has 8 buckets per decade, so a quantile estimate (the
//! geometric midpoint of the bucket holding the rank) can differ from the
//! exact order statistic by at most half a bucket in log space: a factor
//! of `10^(1/16) ≈ 1.155`. Every distribution below must land p50/p90/p99
//! within that bound.

use rand::prelude::*;
use rand::rngs::StdRng;
use telemetry::Histogram;

/// Half a bucket of relative error in log10 space, plus float slack.
const BOUND: f64 = 1.1549; // 10^(1/16) = 1.15478…, padded

/// Exact `q`-quantile with the same rank convention as the histogram:
/// `rank = max(ceil(q·n), 1)`, 1-based into the sorted values.
fn oracle(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Feeds `values` to a histogram and checks p50/p90/p99 (plus the q=0 and
/// q=1 extremes) against the oracle.
fn check(tag: &str, values: &[f64]) {
    let mut h = Histogram::default();
    for &v in values {
        h.observe(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(h.count(), values.len() as u64, "{tag}: count");

    // q=0 and q=1 hit the same bound: their buckets contain min and max.
    for q in [0.0, 0.50, 0.90, 0.99, 1.0] {
        let exact = oracle(&sorted, q);
        let est = h.quantile(q).unwrap();
        let ratio = est / exact;
        assert!(
            (1.0 / BOUND..=BOUND).contains(&ratio),
            "{tag}: q={q}: estimate {est} vs exact {exact} (ratio {ratio})"
        );
    }
    // Monotone in q.
    let qs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let est: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
    assert!(
        est.windows(2).all(|w| w[0] <= w[1]),
        "{tag}: quantiles must be monotone in q"
    );
}

#[test]
fn uniform_distribution_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(101);
    for n in [10usize, 100, 5000] {
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1e-3..10.0f64)).collect();
        check(&format!("uniform[{n}]"), &values);
    }
}

#[test]
fn log_uniform_distribution_matches_oracle() {
    // Spans 8 decades — the regime log-bucketing is built for.
    let mut rng = StdRng::seed_from_u64(202);
    let values: Vec<f64> = (0..4000)
        .map(|_| 10f64.powf(rng.gen_range(-6.0..2.0f64)))
        .collect();
    check("log-uniform", &values);
}

#[test]
fn exponential_tail_matches_oracle() {
    // Heavy right tail, the shape of real latency data.
    let mut rng = StdRng::seed_from_u64(303);
    let values: Vec<f64> = (0..4000)
        .map(|_| 1e-3 * (-(1.0 - rng.gen_range(0.0..1.0f64)).ln()).max(1e-12))
        .collect();
    check("exponential", &values);
}

#[test]
fn near_constant_data_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(404);
    let values: Vec<f64> = (0..500)
        .map(|_| 0.25 * (1.0 + rng.gen_range(-1e-4..1e-4f64)))
        .collect();
    check("near-constant", &values);
}

#[test]
fn bimodal_data_matches_oracle() {
    // Two far-apart modes: quantiles must jump between them correctly.
    let mut rng = StdRng::seed_from_u64(505);
    let values: Vec<f64> = (0..2000)
        .map(|i| {
            let base = if i % 4 == 0 { 2.0 } else { 2e-3 };
            base * (1.0 + rng.gen_range(-0.01..0.01f64))
        })
        .collect();
    check("bimodal", &values);
}
