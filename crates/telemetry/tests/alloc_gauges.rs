//! Sanity checks for the opt-in counting allocator. This integration test
//! binary installs [`telemetry::CountingAlloc`] as its global allocator —
//! exactly how `ansor-tune` and the bench binaries opt in — and checks the
//! gauge arithmetic that `/metrics` exposes as `alloc/*`.

use std::sync::Mutex;

use telemetry::alloc::{rss_bytes, stats};
use telemetry::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The counters are process-global, so tests that assert on deltas must
/// not allocate concurrently with each other.
static SERIAL: Mutex<()> = Mutex::new(());

#[test]
fn counting_allocator_tracks_live_peak_and_total() {
    let _guard = SERIAL.lock().unwrap();
    // The test harness itself allocates, so counters are live already.
    let before = stats().expect("allocator installed → stats available");
    assert!(before.total_allocs > 0);
    assert!(before.peak_bytes >= before.live_bytes);

    let block = vec![0u8; 1 << 20];
    let during = stats().unwrap();
    assert!(
        during.live_bytes >= before.live_bytes + (1 << 20),
        "live bytes must grow by at least the allocation: {} -> {}",
        before.live_bytes,
        during.live_bytes
    );
    assert!(during.peak_bytes >= during.live_bytes);
    assert!(during.total_allocs > before.total_allocs);

    drop(block);
    let after = stats().unwrap();
    assert!(
        after.live_bytes < during.live_bytes,
        "freeing must shrink live bytes: {} -> {}",
        during.live_bytes,
        after.live_bytes
    );
    // Peak is monotone: it never drops after the free.
    assert!(after.peak_bytes >= during.peak_bytes);
}

#[test]
fn realloc_keeps_the_books_balanced() {
    let _guard = SERIAL.lock().unwrap();
    let before = stats().unwrap();
    let mut v: Vec<u8> = Vec::with_capacity(1024);
    v.resize(512 * 1024, 7); // forces realloc growth
    let during = stats().unwrap();
    assert!(during.live_bytes > before.live_bytes);
    drop(v);
    let after = stats().unwrap();
    assert!(after.live_bytes < during.live_bytes);
}

#[test]
fn rss_is_reported_on_linux() {
    if let Some(rss) = rss_bytes() {
        // A test process is at least a page and under a terabyte.
        assert!(rss >= 4096, "rss too small: {rss}");
        assert!(rss < (1 << 40), "rss implausibly large: {rss}");
    }
}
