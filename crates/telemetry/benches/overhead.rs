//! Measures the cost of telemetry calls in the disabled (no sink) state —
//! the acceptance bar is "no allocation per event, negligible overhead in
//! `tune_round`" — and, for contrast, the enabled in-memory path.
//!
//! Run: `cargo bench -p telemetry`

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use telemetry::{Telemetry, TraceEvent};

fn bench_disabled(c: &mut Criterion) {
    let t = Telemetry::disabled();
    c.bench_function("disabled_emit", |b| {
        b.iter(|| {
            t.emit(|| TraceEvent::RoundStart {
                task: "task".to_string(),
                round: black_box(3),
                trials_so_far: 64,
            })
        })
    });
    c.bench_function("disabled_incr", |b| {
        b.iter(|| t.incr(black_box("measure/errors/lowering"), 1))
    });
    c.bench_function("disabled_span", |b| {
        b.iter(|| t.span(black_box("evolution")))
    });
}

fn bench_enabled(c: &mut Criterion) {
    let t = Telemetry::with_metrics();
    c.bench_function("enabled_incr", |b| {
        b.iter(|| t.incr(black_box("measure/errors/lowering"), 1))
    });
    c.bench_function("enabled_span", |b| {
        b.iter(|| t.span(black_box("evolution")))
    });
}

criterion_group! {
    name = overhead;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500));
    targets = bench_disabled, bench_enabled
}
criterion_main!(overhead);
