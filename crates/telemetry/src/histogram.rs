//! Streaming log-bucketed histogram.
//!
//! Values are assigned to exponential buckets (8 per decade, spanning
//! 1e-12 .. 1e4), so quantile estimates carry at most ~±15% relative error —
//! plenty for phase-timing and latency distributions — while the histogram
//! itself is a fixed-size array with O(1) insertion and no per-observation
//! allocation.

use serde::{Deserialize, Serialize};

const BUCKETS_PER_DECADE: usize = 8;
const MIN_EXP: i32 = -12;
const DECADES: usize = 16;
const NBUCKETS: usize = DECADES * BUCKETS_PER_DECADE;

/// Fixed-memory streaming histogram over positive values.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; NBUCKETS],
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if v <= 10f64.powi(MIN_EXP) {
        return 0;
    }
    let idx = ((v.log10() - MIN_EXP as f64) * BUCKETS_PER_DECADE as f64).floor() as i64;
    idx.clamp(0, NBUCKETS as i64 - 1) as usize
}

/// Geometric midpoint of a bucket — the value reported for quantiles that
/// land in it.
fn bucket_value(i: usize) -> f64 {
    10f64.powf(MIN_EXP as f64 + (i as f64 + 0.5) / BUCKETS_PER_DECADE as f64)
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                // Clamp the bucket midpoint by the true observed extremes so
                // single-bucket histograms report exact values.
                return Some(bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one (bucket-wise add). The merged
    /// quantiles are exactly what a single histogram fed both observation
    /// streams would report, since buckets are fixed.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.count == 0 {
            return None;
        }
        Some(HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50).expect("non-empty"),
            p90: self.quantile(0.90).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
        })
    }
}

/// Serializable point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
        assert!(h.summary().is_none());
    }

    #[test]
    fn quantiles_of_uniform_range_are_close() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50).unwrap();
        let p90 = h.quantile(0.90).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Log-bucketing carries bounded relative error.
        assert!((375.0..=660.0).contains(&p50), "p50 = {p50}");
        assert!((700.0..=1000.0).contains(&p90), "p90 = {p90}");
        assert!((850.0..=1000.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn single_value_reports_exactly() {
        let mut h = Histogram::default();
        h.observe(0.25);
        let s = h.summary().unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 0.25);
        assert_eq!(s.p50, 0.25);
        assert_eq!(s.p99, 0.25);
    }

    #[test]
    fn rejects_nonfinite_and_negative() {
        let mut h = Histogram::default();
        h.observe(f64::INFINITY);
        h.observe(f64::NAN);
        h.observe(-1.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn tiny_values_land_in_first_bucket() {
        let mut h = Histogram::default();
        h.observe(0.0);
        h.observe(1e-15);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5).unwrap() <= 1e-12);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for i in 1..=500 {
            a.observe(i as f64 * 1e-3);
            whole.observe(i as f64 * 1e-3);
        }
        for i in 500..=1000 {
            b.observe(i as f64 * 1e-3);
            whole.observe(i as f64 * 1e-3);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        // Summation order differs, so sums agree only to rounding.
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
        let (sa, sw) = (a.summary().unwrap(), whole.summary().unwrap());
        assert_eq!((sa.min, sa.max), (sw.min, sw.max));
        assert_eq!((sa.p50, sa.p90, sa.p99), (sw.p50, sw.p90, sw.p99));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::default();
        a.observe(0.5);
        let before = a.summary();
        a.merge(&Histogram::default());
        assert_eq!(a.summary(), before);
        let mut empty = Histogram::default();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let mut h = Histogram::default();
        for v in [0.001, 0.002, 0.004, 0.008] {
            h.observe(v);
        }
        let s = h.summary().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
