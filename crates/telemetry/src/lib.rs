//! Observability for the Ansor search loop: a metrics registry (counters,
//! gauges, p50/p90/p99 histograms), hierarchical phase timers, and a
//! structured JSONL tuning trace.
//!
//! The central type is [`Telemetry`], a cheaply clonable handle threaded
//! through the search stack. It has three states:
//!
//! - **disabled** ([`Telemetry::disabled`], also `Default`): every call is an
//!   early return on a `None` — no allocation, no locking, no clock reads.
//!   Trace events are built lazily via closures ([`Telemetry::emit`]), so
//!   disabled handles never even construct the event.
//! - **metrics only** ([`Telemetry::with_metrics`]): counters/gauges/timers
//!   accumulate in memory; `emit` is a no-op without a sink.
//! - **tracing** ([`Telemetry::to_file`] / [`Telemetry::to_writer`]): metrics
//!   plus a JSONL event stream ([`TraceLine`] per line).
//!
//! See `docs/TELEMETRY.md` for the event schema and the `trace-report` tool.

pub mod alloc;
pub mod export;
mod histogram;
pub mod metrics;
pub mod report;
mod snapshot;
mod trace;

pub use alloc::CountingAlloc;
pub use histogram::{Histogram, HistogramSummary};
pub use metrics::MetricsSnapshot;
pub use snapshot::{HistogramDelta, Snapshot, SnapshotDelta};
pub use trace::{read_trace, read_trace_file, EfficacyRow, GradientTerms, TraceEvent, TraceLine};

use metrics::Registry;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    registry: Registry,
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    start: Instant,
    seq: AtomicU64,
}

/// Handle to the telemetry pipeline. Clones share the same registry/sink.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field(
                "tracing",
                &self
                    .inner
                    .as_ref()
                    .map(|i| i.sink.is_some())
                    .unwrap_or(false),
            )
            .finish()
    }
}

impl Telemetry {
    /// The zero-overhead null handle.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Enable in-memory metrics without a trace sink.
    pub fn with_metrics() -> Self {
        Self::build(None)
    }

    /// Enable metrics and stream trace events to `writer` as JSONL.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self::build(Some(writer))
    }

    /// Enable metrics and stream trace events to a JSONL file at `path`
    /// (truncating any existing file).
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::build(Some(Box::new(std::io::BufWriter::new(file)))))
    }

    fn build(sink: Option<Box<dyn Write + Send>>) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Registry::default(),
                sink: sink.map(Mutex::new),
                start: Instant::now(),
                seq: AtomicU64::new(0),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a trace sink is installed (i.e. [`Telemetry::emit`] closures
    /// will actually run). Lets callers skip computing expensive
    /// event-payload inputs that live outside the closure.
    pub fn is_tracing(&self) -> bool {
        self.inner
            .as_ref()
            .map(|i| i.sink.is_some())
            .unwrap_or(false)
    }

    /// Add `by` to the counter `name`.
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.incr(name, by);
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(name, value);
        }
    }

    /// Add `by` to the gauge `name` (starting from 0 if unset). Used for
    /// monotone tick gauges like `measure/heartbeat`.
    pub fn gauge_add(&self, name: &str, by: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_add(name, by);
        }
    }

    /// Current value of gauge `name` (`None` when disabled or never set).
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|i| i.registry.gauge_value(name))
    }

    /// Record `value` into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, value);
        }
    }

    /// Current value of counter `name` (0 when disabled or never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.registry.counter_value(name))
            .unwrap_or(0)
    }

    /// Start a scoped phase timer. On drop it records elapsed seconds into
    /// the histogram `phase/<outer>/<inner>/…` — nesting within a thread
    /// builds the hierarchical path.
    pub fn span(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
                Span {
                    active: Some((Arc::clone(inner), Instant::now())),
                }
            }
        }
    }

    /// Emit a trace event. The closure only runs when a sink is installed,
    /// so disabled (and metrics-only) handles pay one branch and nothing
    /// else — no allocation, no serialization.
    pub fn emit(&self, event: impl FnOnce() -> TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let Some(sink) = &inner.sink else { return };
        let line = TraceLine {
            seq: inner.seq.fetch_add(1, Ordering::SeqCst),
            t_ms: inner.start.elapsed().as_secs_f64() * 1e3,
            event: event(),
        };
        let json = serde_json::to_string(&line).expect("trace events serialize");
        let mut w = sink.lock().expect("trace sink poisoned");
        // Telemetry must never take down the tuning run; drop the line on a
        // full disk instead.
        let _ = writeln!(w, "{json}");
    }

    /// Snapshot the metrics registry. `None` when disabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    /// Seconds since this handle (or the clone family's root) was created.
    /// Zero when disabled.
    pub fn uptime_seconds(&self) -> f64 {
        self.inner
            .as_ref()
            .map(|i| i.start.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Snapshot the registry together with the capture-time uptime, for
    /// [`Snapshot::delta`]-based rate computation. `None` when disabled.
    pub fn live_snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|i| Snapshot {
            uptime_seconds: i.start.elapsed().as_secs_f64(),
            metrics: i.registry.snapshot(),
        })
    }

    /// Emit a final `PhaseProfile` event carrying the metrics snapshot and
    /// flush the sink. Call once at the end of a run.
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        if inner.sink.is_some() {
            let snapshot = inner.registry.snapshot();
            self.emit(|| TraceEvent::PhaseProfile { snapshot });
        }
        if let Some(sink) = &inner.sink {
            let _ = sink.lock().expect("trace sink poisoned").flush();
        }
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII phase timer returned by [`Telemetry::span`].
pub struct Span {
    active: Option<(Arc<Inner>, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, started)) = self.active.take() {
            let path = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let path = format!("phase/{}", stack.join("/"));
                stack.pop();
                path
            });
            inner
                .registry
                .observe(&path, started.elapsed().as_secs_f64());
        }
    }
}

/// A clonable in-memory `Write` target, for capturing traces in tests (e.g.
/// the determinism test) without touching the filesystem.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("shared buffer poisoned").clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .expect("shared buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.incr("x", 1);
        t.observe("y", 0.5);
        t.gauge_set("z", 1.0);
        t.emit(|| panic!("event closure must not run when disabled"));
        let _span = t.span("phase");
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_none());
        assert_eq!(t.counter_value("x"), 0);
    }

    #[test]
    fn metrics_only_handle_skips_events() {
        let t = Telemetry::with_metrics();
        t.incr("x", 2);
        t.emit(|| panic!("event closure must not run without a sink"));
        assert_eq!(t.counter_value("x"), 2);
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::with_metrics();
        let u = t.clone();
        t.incr("shared", 1);
        u.incr("shared", 1);
        assert_eq!(t.counter_value("shared"), 2);
    }

    #[test]
    fn events_stream_to_sink_with_monotone_seq() {
        let buf = SharedBuf::new();
        let t = Telemetry::to_writer(Box::new(buf.clone()));
        for round in 0..3 {
            t.emit(|| TraceEvent::RoundStart {
                task: "m".into(),
                round,
                trials_so_far: round * 8,
            });
        }
        t.flush();
        let bytes = buf.contents();
        let (lines, skipped) = read_trace(&bytes[..]).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(lines.len(), 4, "3 rounds + PhaseProfile from flush");
        let seqs: Vec<u64> = lines.iter().map(|l| l.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert!(matches!(lines[3].event, TraceEvent::PhaseProfile { .. }));
    }

    #[test]
    fn spans_build_hierarchical_paths() {
        let t = Telemetry::with_metrics();
        {
            let _outer = t.span("evolution");
            {
                let _inner = t.span("feature_extraction");
            }
        }
        let snap = t.snapshot().unwrap();
        assert!(snap.histograms.contains_key("phase/evolution"));
        assert!(snap
            .histograms
            .contains_key("phase/evolution/feature_extraction"));
    }

    #[test]
    fn span_timers_record_positive_durations() {
        let t = Telemetry::with_metrics();
        {
            let _s = t.span("work");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = t.snapshot().unwrap();
        let h = &snap.histograms["phase/work"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.002, "recorded {}s", h.sum);
    }

    #[test]
    fn counters_are_thread_safe() {
        let t = Telemetry::with_metrics();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.incr("parallel", 1);
                    }
                });
            }
        });
        assert_eq!(t.counter_value("parallel"), 4000);
    }
}
