//! Structured tuning-trace schema: the typed events the search loop emits,
//! the JSONL envelope they are written in, and a tolerant reader.
//!
//! Every line of a trace file is one JSON-encoded [`TraceLine`]:
//! a monotone sequence number, a wall-clock offset in milliseconds since the
//! sink was installed, and the [`TraceEvent`] payload. Event payloads are
//! deterministic for a fixed tuning seed; all wall-clock information lives in
//! `t_ms` (and in `PhaseProfile` snapshots), so traces from identical runs
//! can be compared by stripping those — see `docs/TELEMETRY.md`.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// One event in the tuning trace. Externally tagged in JSON:
/// `{"RoundStart": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A search round is starting for `task`.
    RoundStart {
        task: String,
        round: u64,
        trials_so_far: u64,
    },
    /// Sketch generation finished for `task`.
    SketchStats { task: String, sketches: u64 },
    /// One evolutionary-search invocation finished.
    EvolutionStats {
        task: String,
        generations: u64,
        mutations_applied: u64,
        crossovers_applied: u64,
        crossover_rate: f64,
        best_predicted: f64,
    },
    /// One hardware-measurement batch finished. `best_seconds` is `None`
    /// when every candidate in the batch failed. `error_kinds` is sorted by
    /// kind for deterministic output.
    MeasureBatch {
        task: String,
        valid: u64,
        failed: u64,
        error_kinds: Vec<(String, u64)>,
        best_seconds: Option<f64>,
    },
    /// The learned cost model was retrained on the measurement history.
    ModelRetrain {
        task: String,
        pairs: u64,
        ranking_loss: f64,
        pred_vs_measured_rank_corr: f64,
    },
    /// One boosting round inside GBDT training.
    GbdtRound {
        round: u64,
        trees: u64,
        train_loss: f64,
    },
    /// The task scheduler allocated the next round to `task`. `objective`
    /// is `None` while still unbounded (some task not yet measured).
    SchedulerStep {
        step: u64,
        task: String,
        gradient_terms: GradientTerms,
        objective: Option<f64>,
    },
    /// Feature extraction failed for a measured state (lowering error), so
    /// its measurement enters the training set as a failure record instead
    /// of being silently dropped.
    FeatureExtractFailed { task: String, error: String },
    /// Point-in-time dump of the metrics registry (counters, gauges, phase
    /// timers). Emitted by `Telemetry::flush`. Contains wall-clock data.
    PhaseProfile { snapshot: MetricsSnapshot },
    /// Tuning finished for `task`.
    TuningFinished {
        task: String,
        trials: u64,
        best_seconds: Option<f64>,
    },
}

/// The per-task-scheduler-step gradient decomposition (paper §6): the
/// backward-looking history term, the optimistic forward term, and the
/// similarity term, plus the combined gradient actually used. Fields are
/// `None` when the term is unbounded (e.g. the similarity term with no
/// similar task) — JSON has no encoding for ±∞.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientTerms {
    pub backward: Option<f64>,
    pub optimistic: Option<f64>,
    pub similarity: Option<f64>,
    pub combined: Option<f64>,
}

impl GradientTerms {
    /// Builds the record from raw term values, mapping non-finite values
    /// (unbounded terms) to `None`.
    pub fn from_raw(backward: f64, optimistic: f64, similarity: f64, combined: f64) -> Self {
        let keep = |v: f64| v.is_finite().then_some(v);
        GradientTerms {
            backward: keep(backward),
            optimistic: keep(optimistic),
            similarity: keep(similarity),
            combined: keep(combined),
        }
    }
}

/// JSONL envelope: one line of a trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLine {
    /// Monotone per-sink sequence number.
    pub seq: u64,
    /// Milliseconds since the sink was installed. Wall-clock; excluded from
    /// determinism comparisons.
    pub t_ms: f64,
    pub event: TraceEvent,
}

/// Read a JSONL trace produced via `--trace`. Unparseable lines are counted,
/// not fatal, so a trace truncated by a crash still reports.
pub fn read_trace<R: BufRead>(reader: R) -> std::io::Result<(Vec<TraceLine>, usize)> {
    let mut lines = Vec::new();
    let mut skipped = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceLine>(&line) {
            Ok(l) => lines.push(l),
            Err(_) => skipped += 1,
        }
    }
    Ok((lines, skipped))
}

/// Read a trace file from disk. Returns the parsed lines and the number of
/// skipped (corrupt) lines.
pub fn read_trace_file(path: &std::path::Path) -> std::io::Result<(Vec<TraceLine>, usize)> {
    let file = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundStart {
                task: "conv2d".into(),
                round: 0,
                trials_so_far: 0,
            },
            TraceEvent::EvolutionStats {
                task: "conv2d".into(),
                generations: 4,
                mutations_applied: 37,
                crossovers_applied: 11,
                crossover_rate: 0.229,
                best_predicted: 1.5,
            },
            TraceEvent::MeasureBatch {
                task: "conv2d".into(),
                valid: 14,
                failed: 2,
                error_kinds: vec![("lowering".into(), 2)],
                best_seconds: Some(3.2e-4),
            },
            TraceEvent::MeasureBatch {
                task: "conv2d".into(),
                valid: 0,
                failed: 8,
                error_kinds: vec![("lowering".into(), 8)],
                best_seconds: None,
            },
            TraceEvent::ModelRetrain {
                task: "conv2d".into(),
                pairs: 120,
                ranking_loss: 0.31,
                pred_vs_measured_rank_corr: 0.38,
            },
            TraceEvent::SchedulerStep {
                step: 3,
                task: "conv2d".into(),
                gradient_terms: GradientTerms::from_raw(-0.5, -1.25, f64::INFINITY, -0.875),
                objective: Some(4.2e-3),
            },
        ]
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let mut text = String::new();
        for (i, event) in sample_events().into_iter().enumerate() {
            let line = TraceLine {
                seq: i as u64,
                t_ms: i as f64 * 10.0,
                event,
            };
            text.push_str(&serde_json::to_string(&line).unwrap());
            text.push('\n');
        }
        let (lines, skipped) = read_trace(text.as_bytes()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0].seq, 0);
        match &lines[3].event {
            TraceEvent::MeasureBatch {
                best_seconds,
                failed,
                ..
            } => {
                assert_eq!(*best_seconds, None);
                assert_eq!(*failed, 8);
            }
            other => panic!("expected MeasureBatch, got {other:?}"),
        }
        // Re-serialize and compare: the round trip must be lossless.
        for (line, event) in lines.iter().zip(sample_events()) {
            assert_eq!(line.event, event);
        }
    }

    #[test]
    fn corrupt_lines_are_counted_not_fatal() {
        let text = format!(
            "{}\nnot json\n{{\"seq\":9}}\n\n{}\n",
            serde_json::to_string(&TraceLine {
                seq: 0,
                t_ms: 0.0,
                event: TraceEvent::RoundStart {
                    task: "t".into(),
                    round: 0,
                    trials_so_far: 0
                },
            })
            .unwrap(),
            serde_json::to_string(&TraceLine {
                seq: 1,
                t_ms: 1.0,
                event: TraceEvent::TuningFinished {
                    task: "t".into(),
                    trials: 64,
                    best_seconds: Some(1e-3)
                },
            })
            .unwrap()
        );
        let (lines, skipped) = read_trace(text.as_bytes()).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(skipped, 2);
    }
}
