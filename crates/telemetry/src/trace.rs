//! Structured tuning-trace schema: the typed events the search loop emits,
//! the JSONL envelope they are written in, and a tolerant reader.
//!
//! Every line of a trace file is one JSON-encoded [`TraceLine`]:
//! a monotone sequence number, a wall-clock offset in milliseconds since the
//! sink was installed, and the [`TraceEvent`] payload. Event payloads are
//! deterministic for a fixed tuning seed; all wall-clock information lives in
//! `t_ms` (and in `PhaseProfile` snapshots), so traces from identical runs
//! can be compared by stripping those — see `docs/TELEMETRY.md`.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// One event in the tuning trace. Externally tagged in JSON:
/// `{"RoundStart": {...}}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A search round is starting for `task`.
    RoundStart {
        task: String,
        round: u64,
        trials_so_far: u64,
    },
    /// Sketch generation finished for `task`.
    SketchStats { task: String, sketches: u64 },
    /// One evolutionary-search invocation finished.
    EvolutionStats {
        task: String,
        generations: u64,
        mutations_applied: u64,
        crossovers_applied: u64,
        crossover_rate: f64,
        best_predicted: f64,
    },
    /// One hardware-measurement batch finished. `best_seconds` is `None`
    /// when every candidate in the batch failed. `error_kinds` is sorted by
    /// kind for deterministic output.
    MeasureBatch {
        task: String,
        valid: u64,
        failed: u64,
        error_kinds: Vec<(String, u64)>,
        best_seconds: Option<f64>,
    },
    /// The learned cost model was retrained on the measurement history.
    ModelRetrain {
        task: String,
        pairs: u64,
        ranking_loss: f64,
        pred_vs_measured_rank_corr: f64,
    },
    /// One boosting round inside GBDT training.
    GbdtRound {
        round: u64,
        trees: u64,
        train_loss: f64,
    },
    /// The task scheduler allocated the next round to `task`. `objective`
    /// is `None` while still unbounded (some task not yet measured).
    SchedulerStep {
        step: u64,
        task: String,
        gradient_terms: GradientTerms,
        objective: Option<f64>,
    },
    /// Feature extraction failed for a measured state (lowering error), so
    /// its measurement enters the training set as a failure record instead
    /// of being silently dropped.
    FeatureExtractFailed { task: String, error: String },
    /// Provenance of one candidate sent to hardware measurement: the sketch
    /// it was annotated from, the sketch-rule derivation chain, the
    /// evolutionary operator that produced it, its generation and parent
    /// state signature(s). `sig` is the candidate's own `State::signature()`.
    CandidateOrigin {
        task: String,
        trial: u64,
        sig: u64,
        sketch: u64,
        op: String,
        generation: u64,
        parents: Vec<u64>,
        rules: Vec<String>,
    },
    /// A measured candidate improved the task's best latency; the
    /// improvement is credited to the candidate's full lineage. `prev_best`
    /// is `None` for the first valid measurement.
    ImprovementAttributed {
        task: String,
        trial: u64,
        seconds: f64,
        prev_best: Option<f64>,
        sig: u64,
        sketch: u64,
        op: String,
        generation: u64,
        parents: Vec<u64>,
        rules: Vec<String>,
    },
    /// Per-round efficacy tally: how many candidates each evolutionary
    /// operator / sketch rule proposed, how many survived selection into the
    /// measured batch, how many were measured, and how many set a new task
    /// best. Rows are sorted by name for deterministic output.
    OperatorStats {
        task: String,
        round: u64,
        operators: Vec<EfficacyRow>,
        rules: Vec<EfficacyRow>,
    },
    /// Held-out calibration of the learned cost model: the just-measured
    /// batch scored with the *pre-retrain* model. `rank_acc` is pairwise
    /// rank accuracy over pairs whose measured times differ by ≥5% (the
    /// model's own comparability threshold); `topk_recall` is how many of
    /// the truly fastest k candidates land in the predicted top k, for
    /// k = 1 and 8 (capped at batch size); `err_p*` are quantiles of
    /// |normalized predicted score − normalized throughput|.
    ModelCalibration {
        task: String,
        batch: u64,
        pairs: u64,
        rank_acc: f64,
        top1_recall: f64,
        top8_recall: f64,
        err_p10: f64,
        err_p50: f64,
        err_p90: f64,
    },
    /// Calibration of the step-sequence surrogate against the full GBDT on
    /// one staged (pre-ranked) evolution population: `batch` candidates were
    /// surrogate-scored, the top `kept` were lowered+featurized for the
    /// GBDT, and `rank_acc` is the pairwise agreement between the surrogate
    /// and GBDT orderings over the kept slice (pairs whose GBDT scores
    /// differ; `pairs` counts them). `top1_agree` is whether both models
    /// picked the same best candidate. Only emitted while a surrogate
    /// prerank stage is active, so prerank-off traces are byte-identical.
    SurrogateCalibration {
        task: String,
        batch: u64,
        kept: u64,
        pairs: u64,
        rank_acc: f64,
        top1_agree: bool,
    },
    /// Point-in-time dump of the metrics registry (counters, gauges, phase
    /// timers). Emitted by `Telemetry::flush`. Contains wall-clock data.
    PhaseProfile { snapshot: MetricsSnapshot },
    /// Tuning finished for `task`.
    TuningFinished {
        task: String,
        trials: u64,
        best_seconds: Option<f64>,
    },
}

/// One row of an [`TraceEvent::OperatorStats`] table: the funnel counts for
/// a single evolutionary operator or sketch rule within one search round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficacyRow {
    /// Operator or rule name (e.g. `crossover`, `multi-level-tiling`).
    pub name: String,
    /// Candidates this operator/rule generated this round.
    pub proposed: u64,
    /// Of those, how many survived selection into the measured batch.
    pub survived: u64,
    /// Of those, how many were actually measured (batch cap, dedup).
    pub measured: u64,
    /// Of those, how many set a new task best.
    pub new_best: u64,
}

/// The per-task-scheduler-step gradient decomposition (paper §6): the
/// backward-looking history term, the optimistic forward term, and the
/// similarity term, plus the combined gradient actually used. Fields are
/// `None` when the term is unbounded (e.g. the similarity term with no
/// similar task) — JSON has no encoding for ±∞.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientTerms {
    pub backward: Option<f64>,
    pub optimistic: Option<f64>,
    pub similarity: Option<f64>,
    pub combined: Option<f64>,
}

impl GradientTerms {
    /// Builds the record from raw term values, mapping non-finite values
    /// (unbounded terms) to `None`.
    pub fn from_raw(backward: f64, optimistic: f64, similarity: f64, combined: f64) -> Self {
        let keep = |v: f64| v.is_finite().then_some(v);
        GradientTerms {
            backward: keep(backward),
            optimistic: keep(optimistic),
            similarity: keep(similarity),
            combined: keep(combined),
        }
    }
}

/// JSONL envelope: one line of a trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLine {
    /// Monotone per-sink sequence number.
    pub seq: u64,
    /// Milliseconds since the sink was installed. Wall-clock; excluded from
    /// determinism comparisons.
    pub t_ms: f64,
    pub event: TraceEvent,
}

/// Read a JSONL trace produced via `--trace`. Unparseable lines are counted,
/// not fatal, so a trace truncated by a crash still reports.
pub fn read_trace<R: BufRead>(reader: R) -> std::io::Result<(Vec<TraceLine>, usize)> {
    let mut lines = Vec::new();
    let mut skipped = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceLine>(&line) {
            Ok(l) => lines.push(l),
            Err(_) => skipped += 1,
        }
    }
    Ok((lines, skipped))
}

/// Read a trace file from disk. Returns the parsed lines and the number of
/// skipped (corrupt) lines.
pub fn read_trace_file(path: &std::path::Path) -> std::io::Result<(Vec<TraceLine>, usize)> {
    let file = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RoundStart {
                task: "conv2d".into(),
                round: 0,
                trials_so_far: 0,
            },
            TraceEvent::EvolutionStats {
                task: "conv2d".into(),
                generations: 4,
                mutations_applied: 37,
                crossovers_applied: 11,
                crossover_rate: 0.229,
                best_predicted: 1.5,
            },
            TraceEvent::MeasureBatch {
                task: "conv2d".into(),
                valid: 14,
                failed: 2,
                error_kinds: vec![("lowering".into(), 2)],
                best_seconds: Some(3.2e-4),
            },
            TraceEvent::MeasureBatch {
                task: "conv2d".into(),
                valid: 0,
                failed: 8,
                error_kinds: vec![("lowering".into(), 8)],
                best_seconds: None,
            },
            TraceEvent::ModelRetrain {
                task: "conv2d".into(),
                pairs: 120,
                ranking_loss: 0.31,
                pred_vs_measured_rank_corr: 0.38,
            },
            TraceEvent::SchedulerStep {
                step: 3,
                task: "conv2d".into(),
                gradient_terms: GradientTerms::from_raw(-0.5, -1.25, f64::INFINITY, -0.875),
                objective: Some(4.2e-3),
            },
            TraceEvent::CandidateOrigin {
                task: "conv2d".into(),
                trial: 17,
                sig: u64::MAX - 3,
                sketch: 2,
                op: "mutate-tile-size".into(),
                generation: 4,
                parents: vec![u64::MAX, 12345],
                rules: vec!["multi-level-tiling".into(), "always-inline".into()],
            },
            TraceEvent::ImprovementAttributed {
                task: "conv2d".into(),
                trial: 17,
                seconds: 2.9e-4,
                prev_best: Some(3.2e-4),
                sig: u64::MAX - 3,
                sketch: 2,
                op: "crossover".into(),
                generation: 4,
                parents: vec![1, 2],
                rules: vec!["multi-level-tiling".into()],
            },
            TraceEvent::OperatorStats {
                task: "conv2d".into(),
                round: 1,
                operators: vec![EfficacyRow {
                    name: "crossover".into(),
                    proposed: 40,
                    survived: 12,
                    measured: 5,
                    new_best: 1,
                }],
                rules: vec![EfficacyRow {
                    name: "multi-level-tiling".into(),
                    proposed: 64,
                    survived: 20,
                    measured: 8,
                    new_best: 1,
                }],
            },
            TraceEvent::ModelCalibration {
                task: "conv2d".into(),
                batch: 16,
                pairs: 98,
                rank_acc: 0.77,
                top1_recall: 1.0,
                top8_recall: 0.625,
                err_p10: 0.01,
                err_p50: 0.08,
                err_p90: 0.33,
            },
            TraceEvent::SurrogateCalibration {
                task: "conv2d".into(),
                batch: 128,
                kept: 32,
                pairs: 496,
                rank_acc: 0.81,
                top1_agree: true,
            },
        ]
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let mut text = String::new();
        for (i, event) in sample_events().into_iter().enumerate() {
            let line = TraceLine {
                seq: i as u64,
                t_ms: i as f64 * 10.0,
                event,
            };
            text.push_str(&serde_json::to_string(&line).unwrap());
            text.push('\n');
        }
        let (lines, skipped) = read_trace(text.as_bytes()).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0].seq, 0);
        match &lines[3].event {
            TraceEvent::MeasureBatch {
                best_seconds,
                failed,
                ..
            } => {
                assert_eq!(*best_seconds, None);
                assert_eq!(*failed, 8);
            }
            other => panic!("expected MeasureBatch, got {other:?}"),
        }
        // Re-serialize and compare: the round trip must be lossless.
        for (line, event) in lines.iter().zip(sample_events()) {
            assert_eq!(line.event, event);
        }
    }

    #[test]
    fn corrupt_lines_are_counted_not_fatal() {
        let text = format!(
            "{}\nnot json\n{{\"seq\":9}}\n\n{}\n",
            serde_json::to_string(&TraceLine {
                seq: 0,
                t_ms: 0.0,
                event: TraceEvent::RoundStart {
                    task: "t".into(),
                    round: 0,
                    trials_so_far: 0
                },
            })
            .unwrap(),
            serde_json::to_string(&TraceLine {
                seq: 1,
                t_ms: 1.0,
                event: TraceEvent::TuningFinished {
                    task: "t".into(),
                    trials: 64,
                    best_seconds: Some(1e-3)
                },
            })
            .unwrap()
        );
        let (lines, skipped) = read_trace(text.as_bytes()).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(skipped, 2);
    }
}
