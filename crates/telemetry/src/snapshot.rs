//! Point-in-time snapshots of the live metrics registry, and deltas
//! between two snapshots for rate computation.
//!
//! [`Snapshot`] pairs a [`MetricsSnapshot`] with the handle's uptime at
//! capture time, so two snapshots of the same run can be subtracted into a
//! [`SnapshotDelta`] — counter increases, histogram count/sum increases,
//! and per-second rates over the interval. This is what the live exporter
//! (`telemetry::export`) and `ansor-top` build their throughput and ETA
//! figures from.

use crate::metrics::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A [`MetricsSnapshot`] stamped with the telemetry handle's uptime.
///
/// Captured via [`crate::Telemetry::live_snapshot`]. Each metric kind is
/// captured under its registry lock, so counters are internally consistent
/// with each other (likewise gauges and histograms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Seconds since the telemetry handle was created.
    pub uptime_seconds: f64,
    /// The captured metrics.
    pub metrics: MetricsSnapshot,
}

impl Snapshot {
    /// Difference `self - earlier`. `self` should be the later snapshot;
    /// counters that went backwards (registry replaced) clamp to zero.
    pub fn delta(&self, earlier: &Snapshot) -> SnapshotDelta {
        let seconds = (self.uptime_seconds - earlier.uptime_seconds).max(0.0);
        let counters = self
            .metrics
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.metrics.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .metrics
            .histograms
            .iter()
            .map(|(k, h)| {
                let (c0, s0) = earlier
                    .metrics
                    .histograms
                    .get(k)
                    .map(|e| (e.count, e.sum))
                    .unwrap_or((0, 0.0));
                (
                    k.clone(),
                    HistogramDelta {
                        count: h.count.saturating_sub(c0),
                        sum: (h.sum - s0).max(0.0),
                    },
                )
            })
            .collect();
        SnapshotDelta {
            seconds,
            counters,
            gauges: self.metrics.gauges.clone(),
            histograms,
        }
    }
}

/// Count/sum increase of one histogram between two snapshots. Quantiles do
/// not subtract, so deltas only carry volume and total time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramDelta {
    pub count: u64,
    pub sum: f64,
}

/// The change between two [`Snapshot`]s of the same run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotDelta {
    /// Interval length in seconds.
    pub seconds: f64,
    /// Counter increases over the interval.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge values (gauges are levels, not flows — no subtraction).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram count/sum increases over the interval.
    pub histograms: BTreeMap<String, HistogramDelta>,
}

impl SnapshotDelta {
    /// Per-second rate of counter `name` over the interval. Zero for an
    /// untouched counter; zero (not NaN) for an empty interval.
    pub fn rate(&self, name: &str) -> f64 {
        let d = self.counters.get(name).copied().unwrap_or(0);
        if self.seconds > 0.0 {
            d as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Mean observed value of histogram `name` over the interval (e.g. mean
    /// phase time for observations that landed in the window).
    pub fn mean(&self, name: &str) -> Option<f64> {
        let d = self.histograms.get(name)?;
        if d.count == 0 {
            return None;
        }
        Some(d.sum / d.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn delta_subtracts_counters_and_rates() {
        let t = Telemetry::with_metrics();
        t.incr("measure/valid", 10);
        let a = t.live_snapshot().unwrap();
        t.incr("measure/valid", 30);
        t.incr("measure/failed", 4);
        let mut b = t.live_snapshot().unwrap();
        // Pin the interval so the rate assertion is exact.
        b.uptime_seconds = a.uptime_seconds + 2.0;
        let d = b.delta(&a);
        assert_eq!(d.counters["measure/valid"], 30);
        assert_eq!(d.counters["measure/failed"], 4);
        assert!((d.seconds - 2.0).abs() < 1e-12);
        assert!((d.rate("measure/valid") - 15.0).abs() < 1e-12);
        assert!((d.rate("measure/failed") - 2.0).abs() < 1e-12);
        assert_eq!(d.rate("missing"), 0.0);
    }

    #[test]
    fn delta_keeps_latest_gauges() {
        let t = Telemetry::with_metrics();
        t.gauge_set("progress/round", 1.0);
        let a = t.live_snapshot().unwrap();
        t.gauge_set("progress/round", 5.0);
        let b = t.live_snapshot().unwrap();
        let d = b.delta(&a);
        assert_eq!(d.gauges["progress/round"], 5.0);
    }

    #[test]
    fn delta_histograms_carry_count_and_sum_increase() {
        let t = Telemetry::with_metrics();
        t.observe("phase/evolution", 1.0);
        t.observe("phase/evolution", 1.0);
        let a = t.live_snapshot().unwrap();
        t.observe("phase/evolution", 3.0);
        t.observe("phase/measurement", 0.5);
        let b = t.live_snapshot().unwrap();
        let d = b.delta(&a);
        assert_eq!(d.histograms["phase/evolution"].count, 1);
        assert!((d.histograms["phase/evolution"].sum - 3.0).abs() < 1e-9);
        // Histogram unseen in the earlier snapshot deltas from zero.
        assert_eq!(d.histograms["phase/measurement"].count, 1);
        assert_eq!(d.mean("phase/evolution"), Some(3.0));
        assert_eq!(d.mean("phase/none"), None);
    }

    #[test]
    fn zero_interval_rates_are_zero_not_nan() {
        let t = Telemetry::with_metrics();
        t.incr("c", 8);
        let a = t.live_snapshot().unwrap();
        let mut b = a.clone();
        b.uptime_seconds = a.uptime_seconds; // identical instant
        let d = b.delta(&a);
        assert_eq!(d.rate("c"), 0.0);
    }

    #[test]
    fn snapshot_serializes_deterministically() {
        let t = Telemetry::with_metrics();
        t.incr("b", 1);
        t.incr("a", 1);
        let s = t.live_snapshot().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
    }
}
