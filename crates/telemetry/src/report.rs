//! Pure analysis functions over a parsed trace: everything `trace-report`
//! prints, kept here so it is unit-testable and reusable from other tools.

use crate::histogram::HistogramSummary;
use crate::trace::{TraceEvent, TraceLine};
use serde::Serialize;
use std::collections::BTreeMap;

/// Best-measured-latency-vs-cumulative-trials curve per task, reconstructed
/// from `MeasureBatch` events (the Fig. 7/10 x/y axes).
pub fn best_curves(lines: &[TraceLine]) -> BTreeMap<String, Vec<(u64, f64)>> {
    let mut curves: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
    let mut trials: BTreeMap<String, u64> = BTreeMap::new();
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::MeasureBatch {
            task,
            valid,
            failed,
            best_seconds,
            ..
        } = &line.event
        {
            let t = trials.entry(task.clone()).or_insert(0);
            *t += valid + failed;
            let b = best.entry(task.clone()).or_insert(f64::INFINITY);
            if let Some(s) = best_seconds {
                if *s < *b {
                    *b = *s;
                }
            }
            if b.is_finite() {
                curves.entry(task.clone()).or_default().push((*t, *b));
            }
        }
    }
    curves
}

/// Phase-time breakdown from the last `PhaseProfile` snapshot: `phase/…`
/// histograms sorted by total time, descending.
pub fn phase_breakdown(lines: &[TraceLine]) -> Vec<(String, HistogramSummary)> {
    let snapshot = lines.iter().rev().find_map(|l| match &l.event {
        TraceEvent::PhaseProfile { snapshot } => Some(snapshot),
        _ => None,
    });
    let Some(snapshot) = snapshot else {
        return Vec::new();
    };
    let mut phases: Vec<(String, HistogramSummary)> = snapshot
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("phase/"))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    phases.sort_by(|a, b| b.1.sum.partial_cmp(&a.1.sum).expect("finite sums"));
    phases
}

/// One `ModelRetrain` observation, in trace order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelPoint {
    pub seq: u64,
    pub task: String,
    pub pairs: u64,
    pub ranking_loss: f64,
    pub rank_corr: f64,
}

/// Cost-model accuracy drift over the run: every retrain event in order.
pub fn model_drift(lines: &[TraceLine]) -> Vec<ModelPoint> {
    lines
        .iter()
        .filter_map(|l| match &l.event {
            TraceEvent::ModelRetrain {
                task,
                pairs,
                ranking_loss,
                pred_vs_measured_rank_corr,
            } => Some(ModelPoint {
                seq: l.seq,
                task: task.clone(),
                pairs: *pairs,
                ranking_loss: *ranking_loss,
                rank_corr: *pred_vs_measured_rank_corr,
            }),
            _ => None,
        })
        .collect()
}

/// Per-task allocation from `SchedulerStep` events: how many rounds the task
/// scheduler granted each task, and the final objective it reported.
pub fn allocations(lines: &[TraceLine]) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::SchedulerStep { task, .. } = &line.event {
            *counts.entry(task.clone()).or_insert(0) += 1;
        }
    }
    counts
}

/// Aggregate measurement failures by error kind across the whole trace.
pub fn error_kinds(lines: &[TraceLine]) -> BTreeMap<String, u64> {
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::MeasureBatch { error_kinds, .. } = &line.event {
            for (kind, n) in error_kinds {
                *kinds.entry(kind.clone()).or_insert(0) += n;
            }
        }
    }
    kinds
}

/// Final counter values from the last `PhaseProfile` snapshot in the trace
/// (counters are monotone, so the last snapshot holds the run totals).
/// Empty when the trace carries no snapshot.
pub fn final_counters(lines: &[TraceLine]) -> BTreeMap<String, u64> {
    lines
        .iter()
        .rev()
        .find_map(|l| match &l.event {
            TraceEvent::PhaseProfile { snapshot } => Some(snapshot.counters.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Count of events per variant name — the trace's table of contents.
pub fn event_counts(lines: &[TraceLine]) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for line in lines {
        let name = match &line.event {
            TraceEvent::RoundStart { .. } => "RoundStart",
            TraceEvent::SketchStats { .. } => "SketchStats",
            TraceEvent::EvolutionStats { .. } => "EvolutionStats",
            TraceEvent::MeasureBatch { .. } => "MeasureBatch",
            TraceEvent::ModelRetrain { .. } => "ModelRetrain",
            TraceEvent::GbdtRound { .. } => "GbdtRound",
            TraceEvent::SchedulerStep { .. } => "SchedulerStep",
            TraceEvent::FeatureExtractFailed { .. } => "FeatureExtractFailed",
            TraceEvent::CandidateOrigin { .. } => "CandidateOrigin",
            TraceEvent::ImprovementAttributed { .. } => "ImprovementAttributed",
            TraceEvent::OperatorStats { .. } => "OperatorStats",
            TraceEvent::ModelCalibration { .. } => "ModelCalibration",
            TraceEvent::SurrogateCalibration { .. } => "SurrogateCalibration",
            TraceEvent::PhaseProfile { .. } => "PhaseProfile",
            TraceEvent::TuningFinished { .. } => "TuningFinished",
        };
        *counts.entry(name).or_insert(0) += 1;
    }
    counts
}

/// Run-total funnel counts for one operator or rule, summed over every
/// `OperatorStats` event in the trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Efficacy {
    pub proposed: u64,
    pub survived: u64,
    pub measured: u64,
    pub new_best: u64,
}

fn sum_efficacy<'a>(
    rows: impl Iterator<Item = &'a crate::trace::EfficacyRow>,
) -> BTreeMap<String, Efficacy> {
    let mut out: BTreeMap<String, Efficacy> = BTreeMap::new();
    for row in rows {
        let e = out.entry(row.name.clone()).or_default();
        e.proposed += row.proposed;
        e.survived += row.survived;
        e.measured += row.measured;
        e.new_best += row.new_best;
    }
    out
}

/// Sketch-rule efficacy over the whole trace: proposed / survived /
/// measured / new-best totals per rule name.
pub fn rule_efficacy(lines: &[TraceLine]) -> BTreeMap<String, Efficacy> {
    sum_efficacy(lines.iter().flat_map(|l| match &l.event {
        TraceEvent::OperatorStats { rules, .. } => rules.iter(),
        _ => [].iter(),
    }))
}

/// Evolutionary-operator efficacy over the whole trace: proposed /
/// survived / measured / new-best totals per operator name.
pub fn operator_efficacy(lines: &[TraceLine]) -> BTreeMap<String, Efficacy> {
    sum_efficacy(lines.iter().flat_map(|l| match &l.event {
        TraceEvent::OperatorStats { operators, .. } => operators.iter(),
        _ => [].iter(),
    }))
}

/// One `ImprovementAttributed` observation, in trace order. The last entry
/// for a task is the lineage of that task's final best state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ImprovementPoint {
    pub seq: u64,
    pub trial: u64,
    pub seconds: f64,
    pub prev_best: Option<f64>,
    pub sig: u64,
    pub sketch: u64,
    pub op: String,
    pub generation: u64,
    pub parents: Vec<u64>,
    pub rules: Vec<String>,
}

/// Every best-latency improvement per task, in the order it happened.
pub fn improvements(lines: &[TraceLine]) -> BTreeMap<String, Vec<ImprovementPoint>> {
    let mut out: BTreeMap<String, Vec<ImprovementPoint>> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::ImprovementAttributed {
            task,
            trial,
            seconds,
            prev_best,
            sig,
            sketch,
            op,
            generation,
            parents,
            rules,
        } = &line.event
        {
            out.entry(task.clone()).or_default().push(ImprovementPoint {
                seq: line.seq,
                trial: *trial,
                seconds: *seconds,
                prev_best: *prev_best,
                sig: *sig,
                sketch: *sketch,
                op: op.clone(),
                generation: *generation,
                parents: parents.clone(),
                rules: rules.clone(),
            });
        }
    }
    out
}

/// One `ModelCalibration` observation, in trace order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CalibrationPoint {
    pub seq: u64,
    pub task: String,
    pub batch: u64,
    pub pairs: u64,
    pub rank_acc: f64,
    pub top1_recall: f64,
    pub top8_recall: f64,
    pub err_p10: f64,
    pub err_p50: f64,
    pub err_p90: f64,
}

/// Held-out model calibration over the run: every calibration event in
/// order (the online analogue of the paper's Fig. 15).
pub fn calibration(lines: &[TraceLine]) -> Vec<CalibrationPoint> {
    lines
        .iter()
        .filter_map(|l| match &l.event {
            TraceEvent::ModelCalibration {
                task,
                batch,
                pairs,
                rank_acc,
                top1_recall,
                top8_recall,
                err_p10,
                err_p50,
                err_p90,
            } => Some(CalibrationPoint {
                seq: l.seq,
                task: task.clone(),
                batch: *batch,
                pairs: *pairs,
                rank_acc: *rank_acc,
                top1_recall: *top1_recall,
                top8_recall: *top8_recall,
                err_p10: *err_p10,
                err_p50: *err_p50,
                err_p90: *err_p90,
            }),
            _ => None,
        })
        .collect()
}

/// One `SurrogateCalibration` observation, in trace order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SurrogatePoint {
    pub seq: u64,
    pub task: String,
    pub batch: u64,
    pub kept: u64,
    pub pairs: u64,
    pub rank_acc: f64,
    pub top1_agree: bool,
}

/// Surrogate-vs-GBDT calibration over the run: every staged-scoring batch
/// in order. Empty when no prerank stage was active.
pub fn surrogate_calibration(lines: &[TraceLine]) -> Vec<SurrogatePoint> {
    lines
        .iter()
        .filter_map(|l| match &l.event {
            TraceEvent::SurrogateCalibration {
                task,
                batch,
                kept,
                pairs,
                rank_acc,
                top1_agree,
            } => Some(SurrogatePoint {
                seq: l.seq,
                task: task.clone(),
                batch: *batch,
                kept: *kept,
                pairs: *pairs,
                rank_acc: *rank_acc,
                top1_agree: *top1_agree,
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::GradientTerms;

    fn line(seq: u64, event: TraceEvent) -> TraceLine {
        TraceLine {
            seq,
            t_ms: seq as f64,
            event,
        }
    }

    fn batch(task: &str, valid: u64, failed: u64, best: Option<f64>) -> TraceEvent {
        TraceEvent::MeasureBatch {
            task: task.into(),
            valid,
            failed,
            error_kinds: if failed > 0 {
                vec![("lowering".into(), failed)]
            } else {
                vec![]
            },
            best_seconds: best,
        }
    }

    #[test]
    fn best_curve_is_monotone_and_cumulative() {
        let lines = vec![
            line(0, batch("a", 8, 0, Some(4.0))),
            line(1, batch("a", 6, 2, Some(5.0))), // worse batch: best stays 4.0
            line(2, batch("a", 8, 0, Some(2.0))),
            line(3, batch("b", 4, 4, None)), // all failed: no point yet
            line(4, batch("b", 8, 0, Some(1.0))),
        ];
        let curves = best_curves(&lines);
        assert_eq!(curves["a"], vec![(8, 4.0), (16, 4.0), (24, 2.0)]);
        assert_eq!(curves["b"], vec![(16, 1.0)]);
    }

    #[test]
    fn error_kinds_aggregate_across_batches() {
        let lines = vec![
            line(0, batch("a", 4, 4, Some(1.0))),
            line(1, batch("a", 6, 2, Some(1.0))),
        ];
        assert_eq!(error_kinds(&lines)["lowering"], 6);
    }

    #[test]
    fn allocations_count_scheduler_steps() {
        let step = |s, task: &str| {
            line(
                s,
                TraceEvent::SchedulerStep {
                    step: s,
                    task: task.into(),
                    gradient_terms: GradientTerms::from_raw(0.0, 0.0, 0.0, 0.0),
                    objective: Some(1.0),
                },
            )
        };
        let lines = vec![step(0, "a"), step(1, "b"), step(2, "a")];
        let alloc = allocations(&lines);
        assert_eq!(alloc["a"], 2);
        assert_eq!(alloc["b"], 1);
    }

    #[test]
    fn drift_and_counts_and_phases() {
        let mut snapshot = crate::MetricsSnapshot::default();
        let mut h = crate::Histogram::default();
        h.observe(0.5);
        snapshot
            .histograms
            .insert("phase/evolution".into(), h.summary().unwrap());
        let lines = vec![
            line(
                0,
                TraceEvent::ModelRetrain {
                    task: "a".into(),
                    pairs: 64,
                    ranking_loss: 0.4,
                    pred_vs_measured_rank_corr: 0.2,
                },
            ),
            line(1, TraceEvent::PhaseProfile { snapshot }),
        ];
        let drift = model_drift(&lines);
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].pairs, 64);
        let phases = phase_breakdown(&lines);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "phase/evolution");
        let counts = event_counts(&lines);
        assert_eq!(counts["ModelRetrain"], 1);
        assert_eq!(counts["PhaseProfile"], 1);
    }

    fn row(name: &str, proposed: u64, new_best: u64) -> crate::trace::EfficacyRow {
        crate::trace::EfficacyRow {
            name: name.into(),
            proposed,
            survived: proposed / 2,
            measured: proposed / 4,
            new_best,
        }
    }

    #[test]
    fn efficacy_sums_across_rounds() {
        let lines = vec![
            line(
                0,
                TraceEvent::OperatorStats {
                    task: "a".into(),
                    round: 0,
                    operators: vec![row("crossover", 8, 1), row("mutate-tile-size", 4, 0)],
                    rules: vec![row("multi-level-tiling", 12, 1)],
                },
            ),
            line(
                1,
                TraceEvent::OperatorStats {
                    task: "a".into(),
                    round: 1,
                    operators: vec![row("crossover", 2, 0)],
                    rules: vec![row("multi-level-tiling", 2, 0), row("always-inline", 6, 2)],
                },
            ),
        ];
        let ops = operator_efficacy(&lines);
        assert_eq!(ops["crossover"].proposed, 10);
        assert_eq!(ops["crossover"].new_best, 1);
        assert_eq!(ops["mutate-tile-size"].proposed, 4);
        let rules = rule_efficacy(&lines);
        assert_eq!(rules["multi-level-tiling"].proposed, 14);
        assert_eq!(rules["always-inline"].new_best, 2);
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn improvements_keep_order_and_last_is_best() {
        let imp = |seq, trial, seconds, op: &str| {
            line(
                seq,
                TraceEvent::ImprovementAttributed {
                    task: "a".into(),
                    trial,
                    seconds,
                    prev_best: None,
                    sig: trial,
                    sketch: 0,
                    op: op.into(),
                    generation: 1,
                    parents: vec![7],
                    rules: vec!["multi-level-tiling".into()],
                },
            )
        };
        let lines = vec![
            imp(0, 1, 4.0, "init-population"),
            imp(1, 9, 2.0, "crossover"),
            imp(2, 20, 1.5, "mutate-tile-size"),
        ];
        let by_task = improvements(&lines);
        let a = &by_task["a"];
        assert_eq!(a.len(), 3);
        assert_eq!(a.last().unwrap().op, "mutate-tile-size");
        assert_eq!(a.last().unwrap().trial, 20);
        assert!(a.windows(2).all(|w| w[1].seconds < w[0].seconds));
    }

    #[test]
    fn calibration_points_in_trace_order() {
        let cal = |seq, batch| {
            line(
                seq,
                TraceEvent::ModelCalibration {
                    task: "a".into(),
                    batch,
                    pairs: batch * 3,
                    rank_acc: 0.5,
                    top1_recall: 1.0,
                    top8_recall: 0.75,
                    err_p10: 0.01,
                    err_p50: 0.1,
                    err_p90: 0.4,
                },
            )
        };
        let lines = vec![cal(0, 8), cal(1, 16)];
        let points = calibration(&lines);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].batch, 8);
        assert_eq!(points[1].pairs, 48);
    }

    #[test]
    fn surrogate_calibration_points_in_trace_order() {
        let cal = |seq, batch, kept, rank_acc| {
            line(
                seq,
                TraceEvent::SurrogateCalibration {
                    task: "a".into(),
                    batch,
                    kept,
                    pairs: kept * (kept - 1) / 2,
                    rank_acc,
                    top1_agree: rank_acc > 0.7,
                },
            )
        };
        let lines = vec![cal(0, 128, 32, 0.6), cal(1, 128, 32, 0.85)];
        let points = surrogate_calibration(&lines);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].kept, 32);
        assert!(!points[0].top1_agree);
        assert!(points[1].top1_agree);
        assert_eq!(event_counts(&lines)["SurrogateCalibration"], 2);
    }
}
