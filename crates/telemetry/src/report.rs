//! Pure analysis functions over a parsed trace: everything `trace-report`
//! prints, kept here so it is unit-testable and reusable from other tools.

use crate::histogram::HistogramSummary;
use crate::trace::{TraceEvent, TraceLine};
use std::collections::BTreeMap;

/// Best-measured-latency-vs-cumulative-trials curve per task, reconstructed
/// from `MeasureBatch` events (the Fig. 7/10 x/y axes).
pub fn best_curves(lines: &[TraceLine]) -> BTreeMap<String, Vec<(u64, f64)>> {
    let mut curves: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
    let mut trials: BTreeMap<String, u64> = BTreeMap::new();
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::MeasureBatch {
            task,
            valid,
            failed,
            best_seconds,
            ..
        } = &line.event
        {
            let t = trials.entry(task.clone()).or_insert(0);
            *t += valid + failed;
            let b = best.entry(task.clone()).or_insert(f64::INFINITY);
            if let Some(s) = best_seconds {
                if *s < *b {
                    *b = *s;
                }
            }
            if b.is_finite() {
                curves.entry(task.clone()).or_default().push((*t, *b));
            }
        }
    }
    curves
}

/// Phase-time breakdown from the last `PhaseProfile` snapshot: `phase/…`
/// histograms sorted by total time, descending.
pub fn phase_breakdown(lines: &[TraceLine]) -> Vec<(String, HistogramSummary)> {
    let snapshot = lines.iter().rev().find_map(|l| match &l.event {
        TraceEvent::PhaseProfile { snapshot } => Some(snapshot),
        _ => None,
    });
    let Some(snapshot) = snapshot else {
        return Vec::new();
    };
    let mut phases: Vec<(String, HistogramSummary)> = snapshot
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("phase/"))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    phases.sort_by(|a, b| b.1.sum.partial_cmp(&a.1.sum).expect("finite sums"));
    phases
}

/// One `ModelRetrain` observation, in trace order.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelPoint {
    pub seq: u64,
    pub task: String,
    pub pairs: u64,
    pub ranking_loss: f64,
    pub rank_corr: f64,
}

/// Cost-model accuracy drift over the run: every retrain event in order.
pub fn model_drift(lines: &[TraceLine]) -> Vec<ModelPoint> {
    lines
        .iter()
        .filter_map(|l| match &l.event {
            TraceEvent::ModelRetrain {
                task,
                pairs,
                ranking_loss,
                pred_vs_measured_rank_corr,
            } => Some(ModelPoint {
                seq: l.seq,
                task: task.clone(),
                pairs: *pairs,
                ranking_loss: *ranking_loss,
                rank_corr: *pred_vs_measured_rank_corr,
            }),
            _ => None,
        })
        .collect()
}

/// Per-task allocation from `SchedulerStep` events: how many rounds the task
/// scheduler granted each task, and the final objective it reported.
pub fn allocations(lines: &[TraceLine]) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::SchedulerStep { task, .. } = &line.event {
            *counts.entry(task.clone()).or_insert(0) += 1;
        }
    }
    counts
}

/// Aggregate measurement failures by error kind across the whole trace.
pub fn error_kinds(lines: &[TraceLine]) -> BTreeMap<String, u64> {
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    for line in lines {
        if let TraceEvent::MeasureBatch { error_kinds, .. } = &line.event {
            for (kind, n) in error_kinds {
                *kinds.entry(kind.clone()).or_insert(0) += n;
            }
        }
    }
    kinds
}

/// Final counter values from the last `PhaseProfile` snapshot in the trace
/// (counters are monotone, so the last snapshot holds the run totals).
/// Empty when the trace carries no snapshot.
pub fn final_counters(lines: &[TraceLine]) -> BTreeMap<String, u64> {
    lines
        .iter()
        .rev()
        .find_map(|l| match &l.event {
            TraceEvent::PhaseProfile { snapshot } => Some(snapshot.counters.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Count of events per variant name — the trace's table of contents.
pub fn event_counts(lines: &[TraceLine]) -> BTreeMap<&'static str, u64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for line in lines {
        let name = match &line.event {
            TraceEvent::RoundStart { .. } => "RoundStart",
            TraceEvent::SketchStats { .. } => "SketchStats",
            TraceEvent::EvolutionStats { .. } => "EvolutionStats",
            TraceEvent::MeasureBatch { .. } => "MeasureBatch",
            TraceEvent::ModelRetrain { .. } => "ModelRetrain",
            TraceEvent::GbdtRound { .. } => "GbdtRound",
            TraceEvent::SchedulerStep { .. } => "SchedulerStep",
            TraceEvent::FeatureExtractFailed { .. } => "FeatureExtractFailed",
            TraceEvent::PhaseProfile { .. } => "PhaseProfile",
            TraceEvent::TuningFinished { .. } => "TuningFinished",
        };
        *counts.entry(name).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::GradientTerms;

    fn line(seq: u64, event: TraceEvent) -> TraceLine {
        TraceLine {
            seq,
            t_ms: seq as f64,
            event,
        }
    }

    fn batch(task: &str, valid: u64, failed: u64, best: Option<f64>) -> TraceEvent {
        TraceEvent::MeasureBatch {
            task: task.into(),
            valid,
            failed,
            error_kinds: if failed > 0 {
                vec![("lowering".into(), failed)]
            } else {
                vec![]
            },
            best_seconds: best,
        }
    }

    #[test]
    fn best_curve_is_monotone_and_cumulative() {
        let lines = vec![
            line(0, batch("a", 8, 0, Some(4.0))),
            line(1, batch("a", 6, 2, Some(5.0))), // worse batch: best stays 4.0
            line(2, batch("a", 8, 0, Some(2.0))),
            line(3, batch("b", 4, 4, None)), // all failed: no point yet
            line(4, batch("b", 8, 0, Some(1.0))),
        ];
        let curves = best_curves(&lines);
        assert_eq!(curves["a"], vec![(8, 4.0), (16, 4.0), (24, 2.0)]);
        assert_eq!(curves["b"], vec![(16, 1.0)]);
    }

    #[test]
    fn error_kinds_aggregate_across_batches() {
        let lines = vec![
            line(0, batch("a", 4, 4, Some(1.0))),
            line(1, batch("a", 6, 2, Some(1.0))),
        ];
        assert_eq!(error_kinds(&lines)["lowering"], 6);
    }

    #[test]
    fn allocations_count_scheduler_steps() {
        let step = |s, task: &str| {
            line(
                s,
                TraceEvent::SchedulerStep {
                    step: s,
                    task: task.into(),
                    gradient_terms: GradientTerms::from_raw(0.0, 0.0, 0.0, 0.0),
                    objective: Some(1.0),
                },
            )
        };
        let lines = vec![step(0, "a"), step(1, "b"), step(2, "a")];
        let alloc = allocations(&lines);
        assert_eq!(alloc["a"], 2);
        assert_eq!(alloc["b"], 1);
    }

    #[test]
    fn drift_and_counts_and_phases() {
        let mut snapshot = crate::MetricsSnapshot::default();
        let mut h = crate::Histogram::default();
        h.observe(0.5);
        snapshot
            .histograms
            .insert("phase/evolution".into(), h.summary().unwrap());
        let lines = vec![
            line(
                0,
                TraceEvent::ModelRetrain {
                    task: "a".into(),
                    pairs: 64,
                    ranking_loss: 0.4,
                    pred_vs_measured_rank_corr: 0.2,
                },
            ),
            line(1, TraceEvent::PhaseProfile { snapshot }),
        ];
        let drift = model_drift(&lines);
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].pairs, 64);
        let phases = phase_breakdown(&lines);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "phase/evolution");
        let counts = event_counts(&lines);
        assert_eq!(counts["ModelRetrain"], 1);
        assert_eq!(counts["PhaseProfile"], 1);
    }
}
