//! Opt-in process resource tracking: a counting global allocator and an
//! RSS probe.
//!
//! [`CountingAlloc`] wraps the system allocator with three relaxed atomics
//! (live bytes, peak live bytes, total allocation count). It is *opt-in*:
//! a binary that wants `alloc/*` gauges declares
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;
//! ```
//!
//! and every other binary pays nothing. [`stats`] returns `None` until the
//! first allocation is counted, which is how the exporter detects whether
//! the allocator is installed. [`rss_bytes`] reads resident-set size from
//! `/proc/self/statm` (Linux only; `None` elsewhere).
//!
//! None of these values ever enter the run's metrics registry — the live
//! exporter samples them at scrape time and merges them into its HTTP
//! responses only, so resource tracking cannot perturb trace determinism.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that keeps live/peak/total
/// counters. All bookkeeping is `Relaxed` — counters may lag a few
/// allocations behind under contention, which is fine for gauges.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates all allocation to `System`; the atomic bookkeeping
// neither allocates nor panics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Point-in-time allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
    /// Allocations performed since process start.
    pub total_allocs: u64,
}

/// Current allocator counters, or `None` if [`CountingAlloc`] is not the
/// process's global allocator (nothing was ever counted).
pub fn stats() -> Option<AllocStats> {
    let total = TOTAL_ALLOCS.load(Ordering::Relaxed);
    if total == 0 {
        return None;
    }
    Some(AllocStats {
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        total_allocs: total,
    })
}

/// Resident-set size in bytes from `/proc/self/statm`, or `None` when the
/// proc filesystem is unavailable (non-Linux).
pub fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    // Second field is resident pages. Page size on every Linux target we
    // build for is 4 KiB; an exact sysconf call would need libc.
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}
