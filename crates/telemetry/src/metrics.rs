//! Metrics registry: named counters, gauges, and streaming histograms behind
//! coarse per-kind mutexes. All maps are `BTreeMap` so snapshots (and
//! anything serialized from them) are deterministically ordered.

use crate::histogram::{Histogram, HistogramSummary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub(crate) fn incr(&self, name: &str, by: u64) {
        let mut counters = self.counters.lock().expect("counter registry poisoned");
        match counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                counters.insert(name.to_string(), by);
            }
        }
    }

    pub(crate) fn gauge_set(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().expect("gauge registry poisoned");
        match gauges.get_mut(name) {
            Some(v) => *v = value,
            None => {
                gauges.insert(name.to_string(), value);
            }
        }
    }

    pub(crate) fn gauge_add(&self, name: &str, by: f64) {
        let mut gauges = self.gauges.lock().expect("gauge registry poisoned");
        match gauges.get_mut(name) {
            Some(v) => *v += by,
            None => {
                gauges.insert(name.to_string(), by);
            }
        }
    }

    pub(crate) fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("gauge registry poisoned")
            .get(name)
            .copied()
    }

    pub(crate) fn observe(&self, name: &str, value: f64) {
        let mut histograms = self.histograms.lock().expect("histogram registry poisoned");
        match histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                histograms.insert(name.to_string(), h);
            }
        }
    }

    pub(crate) fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("counter registry poisoned")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().expect("poisoned").clone(),
            gauges: self.gauges.lock().expect("poisoned").clone(),
            histograms: self
                .histograms
                .lock()
                .expect("poisoned")
                .iter()
                .filter_map(|(k, h)| h.summary().map(|s| (k.clone(), s)))
                .collect(),
        }
    }
}

/// Serializable point-in-time view of every metric. Histograms are digested
/// to [`HistogramSummary`] (count/sum/min/max/p50/p90/p99).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics_accumulate() {
        let r = Registry::default();
        r.incr("measure/errors/lowering", 1);
        r.incr("measure/errors/lowering", 2);
        r.incr("measure/ok", 5);
        assert_eq!(r.counter_value("measure/errors/lowering"), 3);
        assert_eq!(r.counter_value("measure/ok"), 5);
        assert_eq!(r.counter_value("missing"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters["measure/errors/lowering"], 3);
    }

    #[test]
    fn gauge_semantics_overwrite() {
        let r = Registry::default();
        r.gauge_set("model/loss", 0.9);
        r.gauge_set("model/loss", 0.4);
        let snap = r.snapshot();
        assert_eq!(snap.gauges["model/loss"], 0.4);
    }

    #[test]
    fn gauge_add_accumulates_from_zero() {
        let r = Registry::default();
        r.gauge_add("measure/heartbeat", 1.0);
        r.gauge_add("measure/heartbeat", 1.0);
        r.gauge_set("base", 10.0);
        r.gauge_add("base", 2.5);
        assert_eq!(r.gauge_value("measure/heartbeat"), Some(2.0));
        assert_eq!(r.gauge_value("base"), Some(12.5));
        assert_eq!(r.gauge_value("missing"), None);
    }

    #[test]
    fn histograms_digest_into_snapshot() {
        let r = Registry::default();
        for i in 1..=100 {
            r.observe("phase/evolution", i as f64 * 1e-3);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["phase/evolution"];
        assert_eq!(h.count, 100);
        assert!(h.p50 > 0.0 && h.p50 <= h.p90 && h.p90 <= h.p99);
        assert!((h.sum - 5.05).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_deterministically_ordered_json() {
        let r = Registry::default();
        r.incr("b", 1);
        r.incr("a", 1);
        r.incr("c", 1);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        let c = json.find("\"c\"").unwrap();
        assert!(a < b && b < c, "keys must serialize sorted: {json}");
    }
}
