//! Live metrics exporter: a std-only background HTTP/1.1 listener that
//! makes a running tuning process scrapeable.
//!
//! [`serve`] binds `127.0.0.1:<port>` and spawns one thread serving three
//! endpoints:
//!
//! - `GET /metrics` — Prometheus text exposition (format 0.0.4) of every
//!   counter, gauge and histogram in the registry, plus process resource
//!   gauges sampled at scrape time;
//! - `GET /status` — a JSON [`StatusReport`]: per-task tuning progress,
//!   phase breakdown, cache hit rates, fault counts, resources;
//! - `GET /healthz` — liveness. Tracks a *heartbeat tick* (the sum of all
//!   counters plus every `*/heartbeat` gauge); if the tick has not moved
//!   for longer than the stall window the endpoint returns 503, so a
//!   wedged run reads unhealthy while a merely slow one stays healthy.
//!
//! The exporter only ever *reads* telemetry. Resource samples (allocator
//! counters, RSS, thread-pool utilization) are merged into HTTP responses
//! at scrape time and never written to the shared registry, so a run with
//! the exporter enabled produces a byte-identical trace and summary to the
//! same run without it. When no exporter is started there are zero extra
//! threads and zero cost.

use crate::histogram::HistogramSummary;
use crate::snapshot::Snapshot;
use crate::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A scrape-time gauge sampler: pushes `name -> value` pairs into the
/// response-local gauge set (never into the registry). Plain fn pointers so
/// binaries can contribute e.g. thread-pool gauges without `telemetry`
/// depending on the runtime crate.
pub type GaugeSampler = fn(&mut BTreeMap<String, f64>);

/// Exporter configuration.
pub struct ExportOptions {
    /// Seconds the heartbeat tick may stand still before `/healthz`
    /// reports unhealthy.
    pub stall_window_seconds: f64,
    /// Extra scrape-time gauge samplers (e.g. runtime pool utilization).
    pub samplers: Vec<GaugeSampler>,
}

impl Default for ExportOptions {
    fn default() -> Self {
        ExportOptions {
            stall_window_seconds: 30.0,
            samplers: Vec::new(),
        }
    }
}

impl ExportOptions {
    /// Defaults, with the stall window overridable via the
    /// `ANSOR_STALL_WINDOW_SECS` environment variable.
    pub fn from_env() -> Self {
        let mut opts = Self::default();
        if let Ok(v) = std::env::var("ANSOR_STALL_WINDOW_SECS") {
            if let Ok(secs) = v.parse::<f64>() {
                if secs > 0.0 {
                    opts.stall_window_seconds = secs;
                }
            }
        }
        opts
    }
}

/// Handle to a running exporter thread. Dropping it signals shutdown (the
/// thread exits within its poll interval); [`Exporter::shutdown`] also
/// joins, and [`Exporter::detach`] leaves the thread serving until process
/// exit.
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal the server thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Keep serving for the life of the process (binaries call this so the
    /// endpoint stays up through the whole run).
    pub fn detach(self) {
        std::mem::forget(self);
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Start the exporter on `addr` (e.g. `127.0.0.1:9464`; port 0 picks a
/// free port). Fails if `tel` is disabled — there would be nothing to
/// scrape — or if the address cannot be bound.
pub fn serve(tel: &Telemetry, addr: &str, opts: ExportOptions) -> std::io::Result<Exporter> {
    if !tel.is_enabled() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "metrics exporter needs an enabled telemetry handle",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let tel = tel.clone();
    let thread = std::thread::Builder::new()
        .name("ansor-metrics-exporter".into())
        .spawn(move || server_loop(listener, tel, opts, stop2))?;
    Ok(Exporter {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

struct Heartbeat {
    last_tick: f64,
    last_change: Instant,
}

fn server_loop(listener: TcpListener, tel: Telemetry, opts: ExportOptions, stop: Arc<AtomicBool>) {
    let mut heartbeat = Heartbeat {
        last_tick: heartbeat_tick(&tel),
        last_change: Instant::now(),
    };
    let mut prev_status_snapshot: Option<Snapshot> = None;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                handle_connection(
                    stream,
                    &tel,
                    &opts,
                    &mut heartbeat,
                    &mut prev_status_snapshot,
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The liveness fingerprint: total counter volume plus every
/// `…/heartbeat` gauge. Any counter increment or heartbeat tick moves it.
fn heartbeat_tick(tel: &Telemetry) -> f64 {
    let Some(snap) = tel.snapshot() else {
        return 0.0;
    };
    let counters: u64 = snap.counters.values().sum();
    let beats: f64 = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.ends_with("/heartbeat"))
        .map(|(_, v)| *v)
        .sum();
    counters as f64 + beats
}

fn handle_connection(
    mut stream: TcpStream,
    tel: &Telemetry,
    opts: &ExportOptions,
    heartbeat: &mut Heartbeat,
    prev_status: &mut Option<Snapshot>,
) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some((method, path)) = read_request(&mut stream) else {
        return;
    };
    if method != "GET" {
        write_response(&mut stream, 405, "text/plain", "method not allowed\n");
        return;
    }

    // Refresh the heartbeat on every request so /metrics scrapes also keep
    // the liveness state current.
    let tick = heartbeat_tick(tel);
    if tick != heartbeat.last_tick {
        heartbeat.last_tick = tick;
        heartbeat.last_change = Instant::now();
    }
    let age = heartbeat.last_change.elapsed().as_secs_f64();
    let healthy = age <= opts.stall_window_seconds;

    match path.as_str() {
        "/metrics" => {
            let Some(snap) = tel.live_snapshot() else {
                return;
            };
            let mut resources = BTreeMap::new();
            sample_resources(&mut resources, &opts.samplers);
            let body = render_exposition(&snap, &resources);
            write_response(&mut stream, 200, "text/plain; version=0.0.4", &body);
        }
        "/status" => {
            let Some(snap) = tel.live_snapshot() else {
                return;
            };
            let mut resources = BTreeMap::new();
            sample_resources(&mut resources, &opts.samplers);
            let report = build_status(
                &snap,
                prev_status.as_ref(),
                &resources,
                healthy,
                age,
                opts.stall_window_seconds,
            );
            *prev_status = Some(snap);
            let body = serde_json::to_string_pretty(&report).unwrap_or_else(|_| "{}".into());
            write_response(&mut stream, 200, "application/json", &body);
        }
        "/healthz" => {
            let body = format!(
                "{{\"healthy\":{healthy},\"uptime_seconds\":{:.3},\"heartbeat_tick\":{tick},\
                 \"heartbeat_age_seconds\":{age:.3},\"stall_window_seconds\":{}}}\n",
                tel.uptime_seconds(),
                opts.stall_window_seconds,
            );
            let code = if healthy { 200 } else { 503 };
            write_response(&mut stream, code, "application/json", &body);
        }
        _ => write_response(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// Read the request head; return `(method, path)` with any query string
/// stripped.
fn read_request(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target).to_string();
    Some((method, path))
}

fn write_response(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Fill `out` with process resource gauges: allocator counters (when
/// [`crate::CountingAlloc`] is installed), RSS, and whatever the extra
/// samplers contribute.
pub fn sample_resources(out: &mut BTreeMap<String, f64>, samplers: &[GaugeSampler]) {
    if let Some(stats) = crate::alloc::stats() {
        out.insert("alloc/live_bytes".into(), stats.live_bytes as f64);
        out.insert("alloc/peak_bytes".into(), stats.peak_bytes as f64);
        out.insert("alloc/total_allocs".into(), stats.total_allocs as f64);
    }
    if let Some(rss) = crate::alloc::rss_bytes() {
        out.insert("process/rss_bytes".into(), rss as f64);
    }
    for sampler in samplers {
        sampler(out);
    }
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

/// Map a registry name to a Prometheus metric name: `ansor_` prefix, every
/// non-`[a-zA-Z0-9_]` byte becomes `_`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("ansor_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render the full text exposition: counters as `counter` (`_total`
/// suffix), gauges and resource samples as `gauge`, histograms as
/// `summary` with `quantile` labels.
pub fn render_exposition(snap: &Snapshot, resources: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    out.push_str("# TYPE ansor_uptime_seconds gauge\n");
    out.push_str(&format!(
        "ansor_uptime_seconds {}\n",
        fmt_value(snap.uptime_seconds)
    ));
    for (name, value) in &snap.metrics.counters {
        let p = prometheus_name(name);
        out.push_str(&format!("# TYPE {p}_total counter\n"));
        out.push_str(&format!("{p}_total {value}\n"));
    }
    for (name, value) in snap.metrics.gauges.iter().chain(resources.iter()) {
        let p = prometheus_name(name);
        out.push_str(&format!("# TYPE {p} gauge\n"));
        out.push_str(&format!("{p} {}\n", fmt_value(*value)));
    }
    for (name, h) in &snap.metrics.histograms {
        let p = prometheus_name(name);
        out.push_str(&format!("# TYPE {p} summary\n"));
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            out.push_str(&format!("{p}{{quantile=\"{q}\"}} {}\n", fmt_value(v)));
        }
        out.push_str(&format!("{p}_sum {}\n", fmt_value(h.sum)));
        out.push_str(&format!("{p}_count {}\n", h.count));
    }
    out
}

/// A parsed exposition document: sample key (name plus label string) to
/// value. Produced by [`parse_exposition`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    pub samples: BTreeMap<String, f64>,
}

impl Exposition {
    /// Value of a sample by exact key, e.g. `ansor_measure_valid_total` or
    /// `ansor_phase_evolution{quantile="0.5"}`.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.samples.get(key).copied()
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse and validate a Prometheus text exposition document. Checks line
/// grammar, metric-name syntax, numeric sample values, that every sample's
/// family has a preceding `# TYPE`, and that no sample key repeats.
/// Returns the samples on success, a description of the first violation
/// otherwise. Shared by the exporter integration test and the CI
/// `live-smoke` validator (`ansor-top --check`).
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut exposition = Exposition::default();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or(format!("line {lineno}: TYPE missing metric name"))?;
                    let kind = parts
                        .next()
                        .ok_or(format!("line {lineno}: TYPE missing kind"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad metric name {name:?}"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE kind {kind:?}"));
                    }
                    typed.insert(name.to_string(), kind.to_string());
                }
                Some("HELP") => {}
                _ => return Err(format!("line {lineno}: unknown comment directive")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        // Sample line: name[{labels}] value
        let (key, value_str) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: sample missing value"))?;
        let key = key.trim();
        let name = key.split('{').next().unwrap_or(key);
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad metric name {name:?}"));
        }
        if key.contains('{') && !key.ends_with('}') {
            return Err(format!("line {lineno}: unterminated label set"));
        }
        let value: f64 = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            s => s
                .parse()
                .map_err(|_| format!("line {lineno}: bad sample value {s:?}"))?,
        };
        // Family lookup: summaries/counters emit suffixed sample names.
        let family_ok = typed.contains_key(name)
            || [
                ("_total", "counter"),
                ("_sum", "summary"),
                ("_count", "summary"),
            ]
            .iter()
            .any(|(suffix, kind)| {
                name.strip_suffix(suffix)
                    .map(|base| {
                        typed.get(base).map(|k| k == kind).unwrap_or(false)
                            || typed.contains_key(name)
                    })
                    .unwrap_or(false)
            })
            || typed.contains_key(name.strip_suffix("_total").unwrap_or(name));
        if !family_ok {
            return Err(format!("line {lineno}: sample {name:?} has no # TYPE"));
        }
        if exposition.samples.insert(key.to_string(), value).is_some() {
            return Err(format!("line {lineno}: duplicate sample {key:?}"));
        }
    }
    if exposition.samples.is_empty() {
        return Err("no samples in exposition".into());
    }
    Ok(exposition)
}

// ---------------------------------------------------------------------------
// /status report

/// Per-task tuning progress, reconstructed from the `progress/task/…`
/// gauges published by the search policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskProgress {
    pub round: f64,
    pub trials_used: f64,
    pub trials_budget: Option<f64>,
    pub best_seconds: Option<f64>,
    pub best_gflops: Option<f64>,
    pub eta_seconds: Option<f64>,
}

/// Hit/miss/rate triple for one cache.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub hit_rate: f64,
}

/// Fault and robustness counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    pub retries: u64,
    pub gave_up: u64,
    pub quarantined: u64,
    pub failed: u64,
    pub errors: BTreeMap<String, u64>,
}

/// Measurement throughput figures.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Trials per second averaged over the whole run.
    pub trials_per_second: f64,
    /// Trials per second since the previous `/status` scrape (`None` on
    /// the first scrape).
    pub recent_trials_per_second: Option<f64>,
}

/// One job's daemon-side view, reconstructed from the
/// `serve/job/<id>/…` gauges the daemon publishes per job.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeJob {
    /// `queued`, `running`, `done`, `failed`, or `cancelled`.
    pub state: String,
    pub trials: u64,
    pub trials_budget: u64,
    pub rounds: u64,
    /// Milliseconds the job sat queued before a worker claimed it
    /// (`None` while still queued).
    pub queue_wait_ms: Option<f64>,
    pub best_seconds: Option<f64>,
    pub best_gflops: Option<f64>,
}

/// Daemon-side state published by `ansor-serve` through `serve/*` gauges
/// (absent from the report when the process is not a tuning daemon).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStatus {
    pub queue_depth: u64,
    pub active_sessions: u64,
    pub jobs_submitted: u64,
    pub jobs_done: u64,
    pub jobs_failed: u64,
    pub jobs_cancelled: u64,
    pub draining: bool,
    pub store_entries: u64,
    pub store_records: u64,
    /// Trials completed across all jobs, finished and live.
    #[serde(default)]
    pub trials_total: u64,
    /// Trials completed so far per live session, keyed by job id.
    pub session_trials: BTreeMap<String, u64>,
    /// Per-job progress keyed by job id (`serve/job/<id>/…` gauges).
    #[serde(default)]
    pub jobs: BTreeMap<String, ServeJob>,
    /// Queue-wait distribution across claimed jobs (milliseconds).
    #[serde(default)]
    pub queue_wait_ms: Option<HistogramSummary>,
    /// Request latency per protocol method (milliseconds), from the
    /// `serve/request_ms/<method>` histograms.
    #[serde(default)]
    pub request_ms: BTreeMap<String, HistogramSummary>,
}

/// Decode the numeric `serve/job/<id>/state` gauge the daemon publishes.
fn job_state_name(code: f64) -> &'static str {
    match code as i64 {
        0 => "queued",
        1 => "running",
        2 => "done",
        3 => "failed",
        4 => "cancelled",
        _ => "unknown",
    }
}

/// Everything `/status` serves; `ansor-top` deserializes this directly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    pub uptime_seconds: f64,
    pub healthy: bool,
    pub heartbeat_age_seconds: f64,
    pub stall_window_seconds: f64,
    pub tasks: BTreeMap<String, TaskProgress>,
    pub scheduler: BTreeMap<String, f64>,
    pub phases: BTreeMap<String, HistogramSummary>,
    pub caches: BTreeMap<String, CacheStats>,
    pub faults: FaultStats,
    pub throughput: Throughput,
    pub resources: BTreeMap<String, f64>,
    /// `Some` only when the process runs an `ansor-serve` daemon.
    pub serve: Option<ServeStatus>,
}

fn serve_status(snap: &Snapshot) -> Option<ServeStatus> {
    if !snap.metrics.gauges.keys().any(|k| k.starts_with("serve/")) {
        return None;
    }
    let gauge = |name: &str| snap.metrics.gauges.get(name).copied().unwrap_or(0.0) as u64;
    let mut jobs: BTreeMap<String, ServeJob> = BTreeMap::new();
    for (k, &v) in &snap.metrics.gauges {
        let Some(rest) = k.strip_prefix("serve/job/") else {
            continue;
        };
        // Job ids never contain '/', so the field is the last segment.
        let Some((job, field)) = rest.rsplit_once('/') else {
            continue;
        };
        let entry = jobs.entry(job.to_string()).or_default();
        match field {
            "state" => entry.state = job_state_name(v).to_string(),
            "trials" => entry.trials = v as u64,
            "trials_budget" => entry.trials_budget = v as u64,
            "rounds" => entry.rounds = v as u64,
            "queue_wait_ms" => entry.queue_wait_ms = Some(v),
            "best_seconds" => entry.best_seconds = Some(v),
            "best_gflops" => entry.best_gflops = Some(v),
            _ => {}
        }
    }
    Some(ServeStatus {
        queue_depth: gauge("serve/queue_depth"),
        active_sessions: gauge("serve/active_sessions"),
        jobs_submitted: gauge("serve/jobs_submitted"),
        jobs_done: gauge("serve/jobs_done"),
        jobs_failed: gauge("serve/jobs_failed"),
        jobs_cancelled: gauge("serve/jobs_cancelled"),
        draining: gauge("serve/draining") != 0,
        store_entries: gauge("serve/store_entries"),
        store_records: gauge("serve/store_records"),
        trials_total: gauge("serve/trials_total"),
        session_trials: snap
            .metrics
            .gauges
            .iter()
            .filter_map(|(k, &v)| {
                let job = k.strip_prefix("serve/session/")?.strip_suffix("/trials")?;
                Some((job.to_string(), v as u64))
            })
            .collect(),
        jobs,
        queue_wait_ms: snap.metrics.histograms.get("serve/queue_wait_ms").cloned(),
        request_ms: snap
            .metrics
            .histograms
            .iter()
            .filter_map(|(k, v)| {
                let method = k.strip_prefix("serve/request_ms/")?;
                Some((method.to_string(), v.clone()))
            })
            .collect(),
    })
}

fn cache_stats(snap: &Snapshot, hits: &str, misses: &str) -> Option<CacheStats> {
    let h = snap.metrics.counters.get(hits).copied().unwrap_or(0);
    let m = snap.metrics.counters.get(misses).copied().unwrap_or(0);
    if h + m == 0 {
        return None;
    }
    Some(CacheStats {
        hits: h,
        misses: m,
        hit_rate: h as f64 / (h + m) as f64,
    })
}

/// Assemble a [`StatusReport`] from a snapshot (pure, so tests can drive
/// it directly).
pub fn build_status(
    snap: &Snapshot,
    prev: Option<&Snapshot>,
    resources: &BTreeMap<String, f64>,
    healthy: bool,
    heartbeat_age_seconds: f64,
    stall_window_seconds: f64,
) -> StatusReport {
    let mut tasks: BTreeMap<String, TaskProgress> = BTreeMap::new();
    let mut scheduler = BTreeMap::new();
    for (name, &value) in &snap.metrics.gauges {
        if let Some(rest) = name.strip_prefix("progress/task/") {
            // Task names may contain '/'; the field is the last segment.
            let Some((task, field)) = rest.rsplit_once('/') else {
                continue;
            };
            let entry = tasks.entry(task.to_string()).or_default();
            match field {
                "round" => entry.round = value,
                "trials_used" => entry.trials_used = value,
                "trials_budget" => entry.trials_budget = Some(value),
                "best_seconds" => entry.best_seconds = Some(value),
                "best_gflops" => entry.best_gflops = Some(value),
                "eta_seconds" => entry.eta_seconds = Some(value),
                _ => {}
            }
        } else if let Some(field) = name.strip_prefix("progress/scheduler/") {
            scheduler.insert(field.to_string(), value);
        }
    }

    let phases = snap
        .metrics
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("phase/"))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();

    let mut caches = BTreeMap::new();
    for (label, hits, misses) in [
        ("measure", "measure/cache_hits", "measure/cache_misses"),
        ("features", "features/cache_hits", "features/cache_misses"),
        (
            "model_score",
            "model/score_cache_hits",
            "model/score_cache_misses",
        ),
    ] {
        if let Some(stats) = cache_stats(snap, hits, misses) {
            caches.insert(label.to_string(), stats);
        }
    }

    let counter = |name: &str| snap.metrics.counters.get(name).copied().unwrap_or(0);
    let faults = FaultStats {
        retries: counter("measure/retries"),
        gave_up: counter("measure/gave_up"),
        quarantined: counter("search/quarantined"),
        failed: counter("measure/failed"),
        errors: snap
            .metrics
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                k.strip_prefix("measure/errors/")
                    .map(|e| (e.to_string(), v))
            })
            .collect(),
    };

    let trials = counter("measure/valid") + counter("measure/failed");
    let throughput = Throughput {
        trials_per_second: if snap.uptime_seconds > 0.0 {
            trials as f64 / snap.uptime_seconds
        } else {
            0.0
        },
        recent_trials_per_second: prev.map(|p| {
            let d = snap.delta(p);
            d.rate("measure/valid") + d.rate("measure/failed")
        }),
    };

    StatusReport {
        uptime_seconds: snap.uptime_seconds,
        healthy,
        heartbeat_age_seconds,
        stall_window_seconds,
        tasks,
        scheduler,
        phases,
        caches,
        faults,
        throughput,
        resources: resources.clone(),
        serve: serve_status(snap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let t = Telemetry::with_metrics();
        t.incr("measure/valid", 40);
        t.incr("measure/failed", 8);
        t.incr("measure/cache_hits", 30);
        t.incr("measure/cache_misses", 10);
        t.incr("measure/retries", 3);
        t.incr("measure/errors/lowering", 5);
        t.gauge_set("progress/task/golden:mm_relu_128/round", 2.0);
        t.gauge_set("progress/task/golden:mm_relu_128/trials_used", 32.0);
        t.gauge_set("progress/task/golden:mm_relu_128/best_gflops", 75.5);
        t.gauge_set("progress/task/t2d:dcgan/up1/round", 1.0);
        t.gauge_set("progress/scheduler/units_done", 4.0);
        t.observe("phase/evolution", 0.25);
        t.live_snapshot().unwrap()
    }

    #[test]
    fn exposition_roundtrips_through_parser() {
        let snap = sample_snapshot();
        let mut resources = BTreeMap::new();
        resources.insert("process/rss_bytes".to_string(), 1234.0 * 4096.0);
        let text = render_exposition(&snap, &resources);
        let parsed = parse_exposition(&text).expect("rendered exposition parses");
        assert_eq!(parsed.value("ansor_measure_valid_total"), Some(40.0));
        assert_eq!(parsed.value("ansor_measure_failed_total"), Some(8.0));
        assert_eq!(
            parsed.value("ansor_progress_task_golden_mm_relu_128_best_gflops"),
            Some(75.5)
        );
        assert_eq!(
            parsed.value("ansor_process_rss_bytes"),
            Some(1234.0 * 4096.0)
        );
        assert!(parsed.value("ansor_phase_evolution_count").is_some());
        assert!(parsed
            .samples
            .keys()
            .any(|k| k.starts_with("ansor_phase_evolution{quantile=")));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_exposition("").is_err());
        assert!(parse_exposition("just words\n").is_err());
        assert!(parse_exposition("# TYPE x gauge\nx notanumber\n").is_err());
        assert!(parse_exposition("x 1\n").is_err(), "sample without TYPE");
        assert!(
            parse_exposition("# TYPE x gauge\nx 1\nx 2\n").is_err(),
            "duplicate sample"
        );
        assert!(parse_exposition("# TYPE 9bad gauge\n9bad 1\n").is_err());
    }

    #[test]
    fn status_reconstructs_tasks_with_slashes_in_names() {
        let snap = sample_snapshot();
        let report = build_status(&snap, None, &BTreeMap::new(), true, 0.1, 30.0);
        assert_eq!(report.tasks.len(), 2);
        let golden = &report.tasks["golden:mm_relu_128"];
        assert_eq!(golden.round, 2.0);
        assert_eq!(golden.trials_used, 32.0);
        assert_eq!(golden.best_gflops, Some(75.5));
        assert!(report.tasks.contains_key("t2d:dcgan/up1"));
        assert_eq!(report.scheduler["units_done"], 4.0);
        let cache = &report.caches["measure"];
        assert!((cache.hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(report.faults.retries, 3);
        assert_eq!(report.faults.errors["lowering"], 5);
        assert!(report.phases.contains_key("phase/evolution"));
        assert!(report.throughput.trials_per_second > 0.0);
        assert!(report.throughput.recent_trials_per_second.is_none());
    }

    #[test]
    fn status_report_roundtrips_through_json() {
        let snap = sample_snapshot();
        let report = build_status(&snap, Some(&snap), &BTreeMap::new(), false, 99.0, 30.0);
        let json = serde_json::to_string(&report).unwrap();
        let back: StatusReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!back.healthy);
    }

    #[test]
    fn status_picks_up_serve_gauges_when_present() {
        let snap = sample_snapshot();
        let report = build_status(&snap, None, &BTreeMap::new(), true, 0.1, 30.0);
        assert!(report.serve.is_none(), "no serve gauges → no serve section");

        let t = Telemetry::with_metrics();
        t.gauge_set("serve/queue_depth", 3.0);
        t.gauge_set("serve/active_sessions", 2.0);
        t.gauge_set("serve/jobs_submitted", 7.0);
        t.gauge_set("serve/jobs_done", 4.0);
        t.gauge_set("serve/draining", 1.0);
        t.gauge_set("serve/store_entries", 2.0);
        t.gauge_set("serve/store_records", 96.0);
        t.gauge_set("serve/trials_total", 192.0);
        t.gauge_set("serve/session/job-6/trials", 32.0);
        t.gauge_set("serve/job/job-6/state", 1.0);
        t.gauge_set("serve/job/job-6/trials", 32.0);
        t.gauge_set("serve/job/job-6/trials_budget", 200.0);
        t.gauge_set("serve/job/job-6/rounds", 2.0);
        t.gauge_set("serve/job/job-6/queue_wait_ms", 1.5);
        t.gauge_set("serve/job/job-6/best_gflops", 81.0);
        t.gauge_set("serve/job/job-7/state", 0.0);
        t.observe("serve/queue_wait_ms", 1.5);
        t.observe("serve/request_ms/submit", 0.2);
        t.observe("serve/request_ms/status", 0.1);
        let snap = t.live_snapshot().unwrap();
        let report = build_status(&snap, None, &BTreeMap::new(), true, 0.1, 30.0);
        let serve = report.serve.as_ref().expect("serve section present");
        assert_eq!(serve.queue_depth, 3);
        assert_eq!(serve.active_sessions, 2);
        assert_eq!(serve.jobs_submitted, 7);
        assert_eq!(serve.jobs_done, 4);
        assert_eq!(serve.jobs_failed, 0);
        assert!(serve.draining);
        assert_eq!(serve.store_records, 96);
        assert_eq!(serve.trials_total, 192);
        assert_eq!(serve.session_trials["job-6"], 32);
        let job = &serve.jobs["job-6"];
        assert_eq!(job.state, "running");
        assert_eq!(job.trials, 32);
        assert_eq!(job.trials_budget, 200);
        assert_eq!(job.rounds, 2);
        assert_eq!(job.queue_wait_ms, Some(1.5));
        assert_eq!(job.best_gflops, Some(81.0));
        assert_eq!(serve.jobs["job-7"].state, "queued");
        assert_eq!(serve.queue_wait_ms.as_ref().unwrap().count, 1);
        assert_eq!(serve.request_ms["submit"].count, 1);
        assert_eq!(serve.request_ms["status"].count, 1);
        // And the section survives the JSON round trip `ansor-top` relies on.
        let json = serde_json::to_string(&report).unwrap();
        let back: StatusReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn serve_refuses_disabled_telemetry() {
        let err = serve(
            &Telemetry::disabled(),
            "127.0.0.1:0",
            ExportOptions::default(),
        );
        assert!(err.is_err());
    }
}
