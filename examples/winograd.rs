//! Winograd convolution vs. direct convolution (§4.1's special-algorithm
//! example): both are plain compute DAGs to Ansor, so both tune with the
//! same rules — no manual template required for either.
//!
//! ```sh
//! cargo run --release --example winograd -- [trials]
//! ```

use ansor::prelude::*;
use ansor::workloads::{ops, winograd_conv2d};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let (batch, ci, co, size) = (1i64, 64i64, 64i64, 56i64);
    let direct = ops::conv2d(batch, ci, co, size, 3, 1, 1);
    let wino = winograd_conv2d(batch, ci, co, size);
    println!(
        "conv2d {size}x{size}, {ci}->{co} channels\n  direct FLOPs: {:.2e}\n  winograd FLOPs: {:.2e} (transform overhead included)",
        direct.flop_count(),
        wino.flop_count()
    );

    let target = HardwareTarget::intel_20core();
    let mut best = Vec::new();
    for (name, dag) in [("direct", direct), ("winograd", wino)] {
        let task = SearchTask::new(format!("conv:{name}"), dag, target.clone());
        let mut measurer = Measurer::new(target.clone());
        let mut options = TuningOptions {
            num_measure_trials: trials,
            ..Default::default()
        };
        if name == "winograd" {
            // §4.2's annotation hints: pin aggressive unrolling on the
            // small transform stages so the code generator folds the
            // constant-matrix multiplications.
            for node in ["V", "U", "Y"] {
                options.evolution.annotation.hints.insert(
                    node.to_string(),
                    ansor::core::AnnotationHint {
                        unroll_pragma: Some(512),
                        ..Default::default()
                    },
                );
            }
        }
        let result = auto_schedule(&task, options, &mut measurer);
        println!("  {name:<9} tuned: {:.3} ms", result.best_seconds * 1e3);
        best.push(result.best_seconds);
    }
    println!("\ndirect / winograd speedup = {:.2}x", best[0] / best[1]);
    println!(
        "Note: the multiplication count alone would give 2.25x, but the\n\
         transform stages materialize large intermediate tensors whose\n\
         memory traffic the simulated machine charges heavily — on this\n\
         hardware model Winograd usually loses to a well-tuned direct\n\
         convolution, which is also why the paper treats Winograd as a\n\
         special case needing dedicated tile structures (§4.1). The point\n\
         of this example is that Ansor schedules the novel 6-node algorithm\n\
         out of the box, with no template."
    );
}
