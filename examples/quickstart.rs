//! Quickstart: define a computation, auto-schedule it, inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use ansor::prelude::*;

fn main() {
    // 1. Define the computation declaratively (paper Figure 1):
    //    C[i, j] = sum_k A[i, k] * B[k, j];  D = relu(C).
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[512, 512]);
    let w = b.constant("B", &[512, 512]);
    let c = b.compute_reduce("C", &[512, 512], &[512], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    b.compute("D", &[512, 512], |ax| {
        Expr::max(
            Expr::load(c, vec![ax[0].clone(), ax[1].clone()]),
            Expr::float(0.0),
        )
    });
    let dag = Arc::new(b.build().expect("valid computation"));
    println!("FLOPs per run: {:.2e}", dag.flop_count());

    // 2. Create a search task on the simulated 20-core CPU and tune.
    let task = SearchTask::new(
        "matmul_relu:512",
        dag.clone(),
        HardwareTarget::intel_20core(),
    );
    let mut measurer = Measurer::new(task.target.clone());
    let options = TuningOptions {
        num_measure_trials: 256,
        ..Default::default()
    };
    println!(
        "tuning with {} measurement trials...",
        options.num_measure_trials
    );
    let result = auto_schedule(&task, options, &mut measurer);
    let best = result.best.expect("found a schedule");

    // 3. Report and pretty-print the best program.
    println!(
        "best: {:.3} ms  ({:.1} GFLOP/s)",
        result.best_seconds * 1e3,
        dag.flop_count() / result.best_seconds / 1e9
    );
    let program = lower(&best.state).expect("lowerable");
    println!("\n--- best program ---\n{}", print_program(&program));

    // 4. Verify functional correctness against the naive program.
    let inputs = interp::random_inputs(&dag, 0);
    let reference = interp::run_naive(&dag, &inputs).expect("reference run");
    let mut remapped = std::collections::HashMap::new();
    for (name, orig) in [("A", 0usize), ("B", 1usize)] {
        let nid = program.dag.node_id(name).expect("input exists");
        remapped.insert(nid, inputs[&orig].clone());
    }
    let bufs = interp::run(&program, &remapped).expect("tuned program runs");
    let d_tuned = program.dag.node_id("D").expect("output");
    let max_err = bufs
        .get(d_tuned)
        .iter()
        .zip(reference.get(3))
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    println!("max |tuned - naive| = {max_err:.2e}");
    assert!(max_err < 1e-2, "tuned program must compute the same values");
    println!("functional check passed.");
}
