//! Tune a whole network with the gradient-descent task scheduler (§6).
//!
//! ```sh
//! cargo run --release --example tune_network -- [network] [units]
//! # networks: resnet50 | mobilenet_v2 | resnet3d_18 | dcgan | bert
//! ```

use ansor::prelude::*;
use ansor::workloads::network;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let net = args.get(1).map(|s| s.as_str()).unwrap_or("dcgan");
    let units: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let batch = 1;
    let target = HardwareTarget::intel_20core();

    let tasks = network(net, batch).unwrap_or_else(|| {
        eprintln!(
            "unknown network {net:?}; use resnet50 | mobilenet_v2 | resnet3d_18 | dcgan | bert"
        );
        std::process::exit(1);
    });
    println!("{net}: {} unique subgraph tasks", tasks.len());
    let tune_tasks: Vec<TuneTask> = tasks
        .iter()
        .map(|t| TuneTask {
            task: SearchTask::new(t.name.clone(), t.dag.clone(), target.clone()),
            weight: t.weight,
            dnn: 0,
        })
        .collect();

    let options = TuningOptions {
        measures_per_round: 32,
        ..Default::default()
    };
    let mut scheduler = TaskScheduler::new(
        tune_tasks,
        Objective::WeightedSum,
        options,
        TaskSchedulerConfig::default(),
    );
    let mut measurer = Measurer::new(target);
    println!("allocating {units} tuning units (32 trials each)...");
    scheduler.tune(units, &mut measurer);

    println!(
        "\nend-to-end latency estimate: {:.3} ms ({} measurement trials)",
        scheduler.dnn_latencies()[0] * 1e3,
        scheduler.total_trials()
    );
    println!("\nper-task allocation (the scheduler prioritizes bottlenecks):");
    let g = scheduler.best_latencies();
    for (i, t) in scheduler.tasks.iter().enumerate() {
        println!(
            "  {:<28} weight {:>4}  units {:>3}  best {:>12}",
            t.task.name,
            t.weight,
            scheduler.allocations[i],
            ansor_format(g[i])
        );
    }
}

fn ansor_format(s: f64) -> String {
    if s.is_finite() {
        format!("{:.3} ms", s * 1e3)
    } else {
        "unmeasured".into()
    }
}
