//! Reproduces Figure 5: prints the generated sketches and a few randomly
//! annotated complete programs for the paper's two example inputs.
//!
//! ```sh
//! cargo run --release --example sketches
//! ```

use std::sync::Arc;

use ansor::prelude::*;
use rand::prelude::*;
use tensor_ir::CmpOp;

/// Example input 1: C = A·B (512³), D = relu(C).
fn example_input_1() -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[512, 512]);
    let w = b.placeholder("B", &[512, 512]);
    let c = b.compute_reduce("C", &[512, 512], &[512], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    b.compute("D", &[512, 512], |ax| {
        Expr::max(
            Expr::load(c, vec![ax[0].clone(), ax[1].clone()]),
            Expr::float(0.0),
        )
    });
    Arc::new(b.build().unwrap())
}

/// Example input 2: B = relu(A); C = pad(B) to 512; E = C·D (8×4 output).
fn example_input_2() -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[8, 400]);
    let d = b.placeholder("D", &[512, 4]);
    let relu = b.compute("B", &[8, 400], |ax| {
        Expr::max(
            Expr::load(a, vec![ax[0].clone(), ax[1].clone()]),
            Expr::float(0.0),
        )
    });
    let pad = b.compute("C", &[8, 512], |ax| {
        Expr::select(
            Expr::cmp(CmpOp::Lt, ax[1].clone(), Expr::int(400)),
            Expr::load(relu, vec![ax[0].clone(), ax[1].clone()]),
            Expr::float(0.0),
        )
    });
    b.compute_reduce("E", &[8, 4], &[512], Reducer::Sum, |ax| {
        Expr::load(pad, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(d, vec![ax[2].clone(), ax[1].clone()])
    });
    Arc::new(b.build().unwrap())
}

fn show(task_name: &str, dag: Arc<ComputeDag>) {
    println!("\n################ {task_name} ################");
    let task = SearchTask::new(task_name, dag.clone(), HardwareTarget::intel_20core());
    let sketches = generate_sketches(&task);
    println!("{} sketches generated", sketches.len());
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = AnnotationConfig::default();
    for sk in &sketches {
        println!("\n=== sketch {} (structural steps) ===", sk.id);
        let skeleton = sk.replay(dag.clone()).expect("sketch replays");
        let program = lower(&skeleton).expect("sketch lowers");
        println!("{}", print_program(&program));
        if let Some(state) = sample_program(sk, &task, &cfg, &mut rng) {
            println!("--- a sampled complete program from sketch {} ---", sk.id);
            let program = lower(&state).expect("sample lowers");
            println!("{}", print_program(&program));
        }
    }
}

fn main() {
    show("example input 1 (matmul + relu)", example_input_1());
    show("example input 2 (relu -> pad -> matmul)", example_input_2());
}
