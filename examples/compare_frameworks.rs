//! Compare all search frameworks on one operator, and demonstrate the
//! tuning-record log: save every measurement, reload, and re-apply the
//! best schedule without searching again.
//!
//! ```sh
//! cargo run --release --example compare_frameworks -- [trials]
//! ```

use ansor::baselines::{search_frameworks, vendor::vendor_seconds};
use ansor::core::{best_record, load_records, save_records, LearnedCostModel, SketchPolicy};
use ansor::prelude::*;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let dag = ansor::workloads::build_case("C2D", 1, 1).expect("case");
    let flops = dag.flop_count();
    let task = SearchTask::new("conv2d:compare", dag, HardwareTarget::intel_20core());

    println!("conv2d 56x56, 64->64 channels — {trials} trials per framework\n");
    println!("{:<12} {:>12} {:>12}", "framework", "best", "GFLOP/s");
    let v = vendor_seconds(&task, &HardwareTarget::intel_20core_avx512());
    println!(
        "{:<12} {:>9.3} ms {:>12.1}",
        "Vendor",
        v * 1e3,
        flops / v / 1e9
    );
    for fw in search_frameworks() {
        let r = fw.tune(&task, trials, 1);
        println!(
            "{:<12} {:>9.3} ms {:>12.1}",
            fw.name(),
            r.best_seconds * 1e3,
            flops / r.best_seconds / 1e9
        );
    }

    // Demonstrate record logging + replay: run a short policy-level search,
    // persist its log, reload, and re-apply the best schedule.
    let options = TuningOptions {
        num_measure_trials: 64,
        ..Default::default()
    };
    let mut policy = SketchPolicy::new(task.clone(), options);
    let mut model = LearnedCostModel::new();
    let mut measurer = Measurer::new(task.target.clone());
    while policy.tune_round(&mut model, &mut measurer) > 0 {}
    let dir = std::env::temp_dir().join("ansor-example");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("conv2d.jsonl");
    let _ = std::fs::remove_file(&path);
    save_records(&path, &policy.log).expect("save log");
    println!(
        "\nsaved {} tuning records to {}",
        policy.log.len(),
        path.display()
    );

    let (records, skipped) = load_records(&path).expect("load log");
    assert_eq!(skipped, 0, "freshly written log must parse cleanly");
    let best = best_record(&records, &task.name).expect("a best record");
    let state = best.replay(task.dag.clone()).expect("replayable");
    let mut fresh = Measurer::new(task.target.clone());
    let replayed = fresh.measure(&state).seconds;
    println!(
        "best from log: trial {} at {:.3} ms; re-applied schedule measures {:.3} ms",
        best.trial,
        best.seconds * 1e3,
        replayed * 1e3
    );
    assert!((replayed - best.seconds).abs() < 1e-12);
}
