//! Auto-scheduling a *novel* operator with a user-defined sketch rule.
//!
//! The paper's pitch: Ansor extends to new operators without manual
//! templates, and users can register custom derivation rules for special
//! algorithms. Here we define a "shifted scaled matmul" operator no
//! library ships a kernel for, tune it out of the box, and then add a
//! custom rule that forces an extra-aggressive unroll pragma on
//! data-reuse nodes.
//!
//! ```sh
//! cargo run --release --example custom_operator
//! ```

use std::sync::Arc;

use ansor::core::sketch::{generate_sketches_with_rules, RuleResult, SketchRule, Working};
use ansor::prelude::*;

/// A computation nobody has a hand-written kernel for:
/// `O[i, j] = sum_k |A[i, k] - B[k, j]| * S[j]` (a scaled L1 distance).
fn novel_operator() -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[256, 128]);
    let w = b.placeholder("B", &[128, 256]);
    let s = b.constant("S", &[256]);
    let d = b.compute_reduce("Dist", &[256, 256], &[128], Reducer::Sum, |ax| {
        Expr::unary(
            tensor_ir::UnOp::Abs,
            Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
                - Expr::load(w, vec![ax[2].clone(), ax[1].clone()]),
        )
    });
    b.compute("O", &[256, 256], |ax| {
        Expr::load(d, vec![ax[0].clone(), ax[1].clone()]) * Expr::load(s, vec![ax[1].clone()])
    });
    Arc::new(b.build().unwrap())
}

/// A user rule (the "User Defined Rule" row of Table 1): pin a large
/// unroll pragma on every data-reuse node before the built-in rules run.
struct AggressiveUnrollRule;

impl SketchRule for AggressiveUnrollRule {
    fn name(&self) -> &'static str {
        "aggressive-unroll"
    }

    fn apply(&self, ws: &Working, _task: &SearchTask) -> RuleResult {
        let i = ws.i as usize;
        if !ws.state.dag.has_data_reuse(i) {
            return RuleResult::Pass;
        }
        // Only fire once per node: skip if the pragma is already set.
        let name = ws.state.dag.nodes[i].name.clone();
        let already = ws
            .state
            .steps
            .iter()
            .any(|s| matches!(s, Step::Pragma { node, .. } if *node == name));
        if already {
            return RuleResult::Pass;
        }
        let mut next = ws.clone();
        next.state
            .apply(Step::Pragma {
                node: name,
                max_unroll: 512,
            })
            .expect("pragma always applies");
        // Do not consume the node: let the built-in rules tile it.
        RuleResult::Apply(vec![next])
    }
}

fn main() {
    let dag = novel_operator();
    let task = SearchTask::new("novel:l1dist", dag.clone(), HardwareTarget::intel_20core());

    // Out-of-the-box: no template needed.
    let sketches = generate_sketches(&task);
    println!(
        "built-in rules generated {} sketches for the novel operator",
        sketches.len()
    );

    // With the user rule the sketch list grows.
    let with_user = generate_sketches_with_rules(&task, &[&AggressiveUnrollRule]);
    println!(
        "with the user-defined rule: {} sketches (extra pragma branches)",
        with_user.len()
    );
    assert!(with_user.len() >= sketches.len());

    // Tune it.
    let mut measurer = Measurer::new(task.target.clone());
    let options = TuningOptions {
        num_measure_trials: 128,
        ..Default::default()
    };
    let result = auto_schedule(&task, options, &mut measurer);
    println!(
        "tuned novel operator: {:.3} ms ({:.1} GFLOP/s)",
        result.best_seconds * 1e3,
        dag.flop_count() / result.best_seconds / 1e9
    );
    let naive = {
        let mut m = Measurer::new(task.target.clone());
        m.measure(&State::new(dag.clone())).seconds
    };
    println!(
        "naive program: {:.3} ms  (speedup {:.0}x)",
        naive * 1e3,
        naive / result.best_seconds
    );
}
