//! Differential test: every randomly sketched + annotated schedule must
//! compute exactly what the untransformed DAG computes.
//!
//! For ~50 fixed-seed cases across matmul and conv workloads we sample a
//! random schedule (sketch + annotations), lower it, run the interpreter
//! on the transformed program, and compare against the naive reference
//! interpretation of the original DAG. Tolerance covers only float
//! re-association from loop reordering; any structural miscompilation
//! (wrong bounds, bad cache-stage wiring, dropped padding) produces
//! errors far above it.

use std::collections::HashMap;
use std::sync::Arc;

use ansor::prelude::*;
use ansor::workloads::subgraphs::conv_layer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matmul_dag(n: i64, m: i64, k: i64, relu: bool) -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[n, k]);
    let w = b.constant("B", &[k, m]);
    let c = b.compute_reduce("C", &[n, m], &[k], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    if relu {
        b.compute("D", &[n, m], |ax| {
            Expr::max(
                Expr::load(c, vec![ax[0].clone(), ax[1].clone()]),
                Expr::float(0.0),
            )
        });
    }
    Arc::new(b.build().unwrap())
}

/// Samples one random schedule for `dag` and differentially checks it
/// against the naive reference. Returns `false` when annotation sampling
/// rejects the draw (no case to check), `true` when a case was verified.
fn check_case(dag: &Arc<ComputeDag>, inputs: &[&str], out: &str, seed: u64, tag: &str) -> bool {
    let task = SearchTask::new(tag, dag.clone(), HardwareTarget::intel_20core());
    let sketches = generate_sketches(&task);
    assert!(!sketches.is_empty(), "{tag}: no sketches generated");
    let cfg = AnnotationConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = (seed as usize) % sketches.len();
    let Some(state) = sample_program(&sketches[idx], &task, &cfg, &mut rng) else {
        return false;
    };
    state.validate().unwrap();
    let program = lower(&state).unwrap_or_else(|e| panic!("{tag} seed {seed}: lower: {e:?}"));

    let raw = interp::random_inputs(dag, seed);
    let reference = interp::run_naive(dag, &raw).unwrap();
    // Remap inputs by node *name*: cache/rfactor stages shift node ids
    // between the original DAG and the transformed program's DAG.
    let mut remapped = HashMap::new();
    for name in inputs {
        let orig = dag.node_id(name).unwrap();
        if let Some(data) = raw.get(&orig) {
            remapped.insert(program.dag.node_id(name).unwrap(), data.clone());
        }
    }
    let got = interp::run(&program, &remapped)
        .unwrap_or_else(|e| panic!("{tag} seed {seed}: interp: {e:?}"));

    let want = reference.get(dag.node_id(out).unwrap());
    let have = got.get(program.dag.node_id(out).unwrap());
    assert_eq!(want.len(), have.len(), "{tag} seed {seed}: output shape");
    for (i, (a, b)) in have.iter().zip(want).enumerate() {
        assert!(
            (a - b).abs() < 1e-3,
            "{tag} seed {seed}: output[{i}] = {a}, reference = {b}"
        );
    }
    true
}

#[test]
fn random_matmul_schedules_match_reference() {
    let shapes = [
        (4i64, 4i64, 4i64, false),
        (8, 8, 8, true),
        (16, 8, 8, false),
        (8, 6, 12, true),
        (12, 4, 8, false),
        (16, 16, 16, true),
    ];
    let mut checked = 0;
    for (case, &(n, m, k, relu)) in shapes.iter().enumerate() {
        let dag = matmul_dag(n, m, k, relu);
        let out = if relu { "D" } else { "C" };
        for s in 0..6u64 {
            let seed = 1000 * case as u64 + s;
            if check_case(&dag, &["A", "B"], out, seed, "diff:matmul") {
                checked += 1;
            }
        }
    }
    assert!(checked >= 30, "only {checked}/36 matmul cases sampled");
}

#[test]
fn random_conv_schedules_match_reference() {
    // (batch, ci, co, size, kernel, stride, pad) — tiny shapes so the
    // interpreter stays fast; all conv structure is still exercised
    // (padding selects, strided windows, bn + relu epilogue).
    let configs = [
        (1i64, 2i64, 4i64, 6i64, 3i64, 1i64, 1i64),
        (1, 3, 2, 8, 3, 2, 1),
        (2, 2, 2, 5, 1, 1, 0),
    ];
    let mut checked = 0;
    for (case, &(b, ci, co, size, k, st, p)) in configs.iter().enumerate() {
        let dag = conv_layer(b, ci, co, size, k, st, p);
        for s in 0..8u64 {
            let seed = 7000 + 1000 * case as u64 + s;
            if check_case(
                &dag,
                &["A", "W", "Scale", "Shift"],
                "Relu",
                seed,
                "diff:conv",
            ) {
                checked += 1;
            }
        }
    }
    assert!(checked >= 18, "only {checked}/24 conv cases sampled");
}
