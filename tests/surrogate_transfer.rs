//! Cross-class transfer through the warm store's surrogate: a donor
//! session on one operator class trains the store-wide step-sequence
//! model, and a *different* class warm-started from it must reach the
//! cold run's final quality in no more trials than the cold run took.
//!
//! Also pins the golden-trace guarantee from the other side: with the
//! prerank stage off (the default) a traced run emits no
//! `SurrogateCalibration` events and no `surrogate/*` counters, so
//! enabling the subsystem cannot perturb existing traces.

use ansor::core::{SearchTask, StepSequenceModel, TuningOptions, TuningRecord, TuningSession};
use ansor::prelude::*;
use ansor::serve::{JobSpec, WarmStore};
use ansor::workloads::build_case;
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

const DONOR_TRIALS: usize = 96;
const PROBE_TRIALS: usize = 64;

fn donor_spec(seed: u64) -> JobSpec {
    JobSpec {
        op: "GMM".into(),
        shape: 0,
        batch: 1,
        target: "intel".into(),
        trials: DONOR_TRIALS,
        seed,
        warm_start: None,
        threads: None,
        faults: None,
        prerank_keep: None,
        transfer: None,
    }
}

/// Runs a donor job exactly as the daemon would and absorbs its log into
/// the store (which trains the store-wide surrogate).
fn run_donor_into(store: &WarmStore, seed: u64) {
    let spec = donor_spec(seed);
    let dag = build_case(&spec.op, spec.shape, spec.batch).expect("known case");
    let target = HardwareTarget::by_name(&spec.target).expect("known target");
    let task = SearchTask::new(spec.task_name(), dag, target.clone());
    let options = TuningOptions {
        num_measure_trials: spec.trials,
        seed: spec.seed,
        ..Default::default()
    };
    let mut session = TuningSession::new(task, options, Measurer::new(target), "donor");
    session.run(|_| true);
    store.absorb(&spec, "none", session.log());
}

/// Tunes the probe class (GMM shape 2 — never absorbed into the store),
/// optionally warm-started with the transferred surrogate, and returns
/// the tuning history.
fn run_probe(surrogate: Option<StepSequenceModel>) -> Vec<TuningRecord> {
    let dag = build_case("GMM", 2, 1).expect("GMM shape 2 exists");
    let target = HardwareTarget::by_name("intel").expect("intel target");
    let task = SearchTask::new("GMM:s2b1", dag, target.clone());
    let options = TuningOptions {
        num_measure_trials: PROBE_TRIALS,
        seed: 1,
        prerank_keep: surrogate.is_some().then_some(0.25),
        ..Default::default()
    };
    let mut session = TuningSession::new(task, options, Measurer::new(target), "probe");
    if let Some(sur) = surrogate {
        session.install_surrogate(sur);
    }
    session.run(|_| true);
    session.into_result().history
}

/// First trial at which the running best reached `target` seconds.
fn trials_to_reach(history: &[TuningRecord], target: f64) -> Option<u64> {
    history
        .iter()
        .find(|r| r.best_seconds <= target)
        .map(|r| r.trial)
}

#[test]
fn transferred_surrogate_reaches_cold_quality_in_no_more_trials() {
    let store = WarmStore::in_memory();
    for seed in [0, 1] {
        run_donor_into(&store, seed);
    }
    let surrogate = store.surrogate();
    assert!(
        surrogate.is_trained(),
        "store surrogate must train from absorbed donor jobs ({} updates)",
        surrogate.num_updates()
    );

    let cold = run_probe(None);
    let warm = run_probe(Some(surrogate));

    // Both runs are measured against the same bar: the cold run's final
    // quality on a class the store never saw.
    let bar = cold.last().expect("cold probe ran").best_seconds;
    let cold_trials = trials_to_reach(&cold, bar).expect("cold reaches its own best");
    let warm_trials = trials_to_reach(&warm, bar).unwrap_or(u64::MAX);
    assert!(
        warm_trials <= cold_trials,
        "cross-class warm start must not slow convergence: \
         warm {warm_trials} trials vs cold {cold_trials} to reach {bar:e}s"
    );
}

#[test]
fn prerank_off_emits_no_surrogate_trace_events_or_counters() {
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let dag = build_case("GMM", 2, 1).expect("GMM shape 2 exists");
    let target = HardwareTarget::by_name("intel").expect("intel target");
    let task = SearchTask::new("GMM:s2b1", dag, target.clone());
    let options = TuningOptions {
        num_measure_trials: 48,
        seed: 1,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut measurer = Measurer::new(target);
    measurer.set_telemetry(tel.clone());
    let mut session = TuningSession::new(task, options, measurer, "prerank-off");
    session.run(|_| true);
    tel.flush();

    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0, "trace must be fully parseable");
    assert!(
        !lines
            .iter()
            .any(|l| matches!(l.event, TraceEvent::SurrogateCalibration { .. })),
        "prerank off must not emit SurrogateCalibration events"
    );
    for (name, _) in telemetry::report::final_counters(&lines) {
        assert!(
            !name.starts_with("surrogate/"),
            "prerank off must not create surrogate counters (found {name})"
        );
    }
}
