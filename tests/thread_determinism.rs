//! The parallel runtime's determinism contract, end to end: a tuning run
//! (evolution + cost model + measurement) at `--threads 1` and at
//! `--threads 4` must produce the *same search* — identical best state,
//! identical tuning-record log, and identical trace event sequences.
//! Only wall-clock data (`PhaseProfile` snapshots, `t_ms`) may differ.
//!
//! Both runs go through `runtime::set_threads`, the exact switch the
//! `--threads` flag drives (see docs/PARALLELISM.md).

use std::sync::Arc;

use ansor::core::{EvolutionConfig, TuningRecordLog};
use ansor::prelude::*;
use ansor::runtime;
use hwsim::FaultPlan;
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

fn matmul_task() -> SearchTask {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[128, 128]);
    let w = b.constant("B", &[128, 128]);
    b.compute_reduce("C", &[128, 128], &[128], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    SearchTask::new(
        "matmul:threads",
        Arc::new(b.build().unwrap()),
        HardwareTarget::intel_20core(),
    )
}

/// Everything a tuning run produces that the determinism contract covers.
struct Run {
    best_steps: Option<String>,
    best_seconds: f64,
    log: Vec<TuningRecordLog>,
    events: Vec<TraceEvent>,
}

fn tuned_run(threads: usize, seed: u64) -> Run {
    tuned_run_with(threads, seed, SplitStrategy::Auto)
}

fn tuned_run_with(threads: usize, seed: u64, split: SplitStrategy) -> Run {
    runtime::set_threads(threads);
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let task = matmul_task();
    let options = TuningOptions {
        num_measure_trials: 48,
        measures_per_round: 16,
        init_population: 32,
        seed,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut policy = SketchPolicy::new(task.clone(), options);
    let mut measurer = Measurer::new(task.target.clone());
    measurer.set_telemetry(tel.clone());
    let mut model = LearnedCostModel::new();
    model.set_split_strategy(split);
    model.set_telemetry(tel.clone());
    while policy.tune_round(&mut model, &mut measurer) > 0 {}
    policy.emit_finished();
    tel.flush();
    runtime::set_threads(0);

    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0, "trace must be fully parseable");
    let events = lines
        .into_iter()
        .map(|l| l.event)
        .filter(|e| !matches!(e, TraceEvent::PhaseProfile { .. }))
        .collect();
    Run {
        best_steps: policy
            .best_individual()
            .map(|i| format!("{:?}", i.state.steps)),
        best_seconds: policy.best_seconds(),
        log: policy.log.clone(),
        events,
    }
}

/// A crossover-heavy tuning run under the default fault plan: with
/// `crossover_prob` ≈ 0.9 most offspring lanes attempt crossover (and
/// many fail and fall back to mutation — the paths satellite to the
/// parallel offspring refactor), while cursed-measurement faults keep the
/// policy's quarantined (banned) signature set non-empty.
fn crossover_heavy_run(threads: usize, seed: u64) -> Run {
    runtime::set_threads(threads);
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let task = matmul_task();
    let options = TuningOptions {
        num_measure_trials: 48,
        measures_per_round: 16,
        init_population: 32,
        seed,
        evolution: EvolutionConfig {
            crossover_prob: 0.9,
            ..Default::default()
        },
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut policy = SketchPolicy::new(task.clone(), options);
    // The default stress plan with cursed states boosted from 0.5% to 10%
    // so a 48-trial run reliably quarantines several signatures.
    let plan = FaultPlan {
        cursed_prob: 0.10,
        ..FaultPlan::default()
    };
    let mut measurer = Measurer::with_faults(task.target.clone(), plan);
    measurer.set_telemetry(tel.clone());
    let mut model = LearnedCostModel::new();
    model.set_telemetry(tel.clone());
    let mut quarantined = 0;
    while policy.tune_round(&mut model, &mut measurer) > 0 {
        quarantined = policy.quarantined().len();
    }
    policy.emit_finished();
    tel.flush();
    runtime::set_threads(0);
    assert!(
        quarantined > 0,
        "fault plan must quarantine (ban) at least one signature"
    );

    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0, "trace must be fully parseable");
    let events = lines
        .into_iter()
        .map(|l| l.event)
        .filter(|e| !matches!(e, TraceEvent::PhaseProfile { .. }))
        .collect();
    Run {
        best_steps: policy
            .best_individual()
            .map(|i| format!("{:?}", i.state.steps)),
        best_seconds: policy.best_seconds(),
        log: policy.log.clone(),
        events,
    }
}

// One test function on purpose: `set_threads` is process-global, and the
// test harness runs sibling `#[test]`s concurrently.
#[test]
fn thread_count_does_not_change_search_results() {
    let serial = tuned_run(1, 5);
    let parallel = tuned_run(4, 5);

    assert!(serial.best_steps.is_some(), "run must find a program");
    assert!(serial.best_seconds.is_finite());
    assert!(serial.log.len() >= 32, "run must fill most of its budget");
    assert!(
        serial
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::MeasureBatch { .. })),
        "trace must contain measurement batches"
    );

    // The attribution events ride the same determinism contract: they must
    // be present (so the equality assertions below are not vacuous for
    // them) and internally consistent.
    let count = |run: &Run, name: &str| {
        run.events
            .iter()
            .filter(|e| {
                matches!(
                    (name, e),
                    ("origin", TraceEvent::CandidateOrigin { .. })
                        | ("improve", TraceEvent::ImprovementAttributed { .. })
                        | ("opstats", TraceEvent::OperatorStats { .. })
                        | ("calibration", TraceEvent::ModelCalibration { .. })
                )
            })
            .count()
    };
    assert!(count(&serial, "origin") >= 32, "one origin per measurement");
    assert!(count(&serial, "improve") >= 1, "some trial must improve");
    assert!(count(&serial, "opstats") >= 2, "one stats event per round");
    assert!(
        count(&serial, "calibration") >= 1,
        "rounds after the first retrain must calibrate the model"
    );
    // Every attributed improvement refers to a candidate whose origin was
    // recorded in the same trace.
    let origin_sigs: std::collections::HashSet<u64> = serial
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::CandidateOrigin { sig, .. } => Some(*sig),
            _ => None,
        })
        .collect();
    for e in &serial.events {
        if let TraceEvent::ImprovementAttributed { sig, .. } = e {
            assert!(origin_sigs.contains(sig), "improvement without an origin");
        }
    }

    assert_eq!(serial.best_steps, parallel.best_steps, "best state");
    assert_eq!(
        serial.best_seconds.to_bits(),
        parallel.best_seconds.to_bits(),
        "best seconds must be bit-identical"
    );
    assert_eq!(serial.log, parallel.log, "tuning-record logs");
    assert_eq!(serial.events, parallel.events, "trace event sequences");

    // The comparison is not vacuous: a different seed searches differently.
    let other = tuned_run(4, 6);
    assert_ne!(serial.events, other.events, "seeds must matter");

    // The contract also covers the histogram-binned GBDT path, whose
    // per-feature histograms run on the worker threads: force it on (the
    // adaptive default stays exact at this run's training-set size) and
    // repeat the 1-vs-4-thread comparison.
    let hist_serial = tuned_run_with(1, 5, SplitStrategy::Histogram);
    let hist_parallel = tuned_run_with(4, 5, SplitStrategy::Histogram);
    assert_eq!(
        hist_serial.best_steps, hist_parallel.best_steps,
        "best state (histogram)"
    );
    assert_eq!(
        hist_serial.best_seconds.to_bits(),
        hist_parallel.best_seconds.to_bits(),
        "best seconds must be bit-identical (histogram)"
    );
    assert_eq!(
        hist_serial.log, hist_parallel.log,
        "tuning-record logs (histogram)"
    );
    assert_eq!(
        hist_serial.events, hist_parallel.events,
        "trace event sequences (histogram)"
    );

    // Crossover-heavy sweep at threads 1 vs 4 vs 8: with crossover_prob
    // 0.9 the parallel offspring lanes overwhelmingly attempt crossover —
    // exercising crossover success, crossover failure with fallback to
    // mutation, and the banned-signature filter (the boosted fault plan
    // quarantines several states) — and the whole search must still be
    // bit-identical at every thread count.
    let x_serial = crossover_heavy_run(1, 5);
    let x_par4 = crossover_heavy_run(4, 5);
    let x_par8 = crossover_heavy_run(8, 5);
    assert!(
        x_serial.events.iter().any(
            |e| matches!(e, TraceEvent::EvolutionStats { crossovers_applied, .. }
                if *crossovers_applied > 0)
        ),
        "crossover-heavy config must actually apply crossovers"
    );
    for (name, other) in [("4 threads", &x_par4), ("8 threads", &x_par8)] {
        assert_eq!(
            x_serial.best_steps, other.best_steps,
            "best state (crossover-heavy, {name})"
        );
        assert_eq!(
            x_serial.best_seconds.to_bits(),
            other.best_seconds.to_bits(),
            "best seconds must be bit-identical (crossover-heavy, {name})"
        );
        assert_eq!(
            x_serial.log, other.log,
            "tuning-record logs (crossover-heavy, {name})"
        );
        assert_eq!(
            x_serial.events, other.events,
            "trace event sequences (crossover-heavy, {name})"
        );
    }
}
