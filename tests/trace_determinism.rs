//! Two tuning runs with the same seed must emit identical trace event
//! sequences. Wall-clock data (`t_ms`, `PhaseProfile` snapshots) is
//! excluded from the comparison — see docs/TELEMETRY.md.

use ansor::prelude::*;
use std::sync::Arc;
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

fn matmul_task() -> SearchTask {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[128, 128]);
    let w = b.constant("B", &[128, 128]);
    b.compute_reduce("C", &[128, 128], &[128], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    SearchTask::new(
        "matmul:determinism",
        Arc::new(b.build().unwrap()),
        HardwareTarget::intel_20core(),
    )
}

/// Runs one short traced tuning session and returns the deterministic
/// part of its trace: every event except `PhaseProfile` (wall-clock).
fn traced_run(seed: u64) -> Vec<TraceEvent> {
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let task = matmul_task();
    let options = TuningOptions {
        num_measure_trials: 32,
        seed,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut measurer = Measurer::new(task.target.clone());
    measurer.set_telemetry(tel.clone());
    let mut model = LearnedCostModel::new();
    model.set_telemetry(tel.clone());
    let result = auto_schedule_with_model(&task, options, &mut measurer, &mut model);
    assert!(result.best_seconds.is_finite());
    tel.flush();
    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0, "trace must be fully parseable");
    lines
        .into_iter()
        .map(|l| l.event)
        .filter(|e| !matches!(e, TraceEvent::PhaseProfile { .. }))
        .collect()
}

#[test]
fn same_seed_runs_emit_identical_traces() {
    let a = traced_run(11);
    let b = traced_run(11);
    assert!(!a.is_empty(), "trace must contain events");
    assert!(
        a.iter()
            .any(|e| matches!(e, TraceEvent::MeasureBatch { .. })),
        "trace must contain measurement batches"
    );
    assert_eq!(a, b, "same-seed traces must match event for event");
}

#[test]
fn different_seed_runs_differ() {
    // Sanity check that the comparison is not vacuous: a different seed
    // explores differently, so some event payload must change.
    let a = traced_run(11);
    let b = traced_run(12);
    assert_ne!(a, b, "different seeds should diverge somewhere");
}
