//! Cross-crate integration tests: full tuning pipelines over real
//! workloads, exercising `tensor-ir` → `hwsim` → `ansor-core` together.

use ansor::prelude::*;
use ansor::workloads;

fn options(trials: usize) -> TuningOptions {
    TuningOptions {
        num_measure_trials: trials,
        measures_per_round: 16,
        init_population: 24,
        evolution: EvolutionConfig {
            population: 24,
            generations: 2,
            ..Default::default()
        },
        seed: 7,
        ..Default::default()
    }
}

#[test]
fn tune_conv2d_end_to_end() {
    let dag = workloads::build_case("C2D", 1, 1).unwrap();
    let task = SearchTask::new("conv2d:e2e", dag.clone(), HardwareTarget::intel_20core());
    let mut measurer = Measurer::new(task.target.clone());
    let result = auto_schedule(&task, options(48), &mut measurer);
    let best = result.best.expect("schedule found");
    // The tuned program must beat the naive program by a wide margin.
    let naive = {
        let mut m = Measurer::new(task.target.clone());
        m.measure(&State::new(dag)).seconds
    };
    assert!(
        result.best_seconds * 10.0 < naive,
        "tuned {} vs naive {naive}",
        result.best_seconds
    );
    // And it must still be a valid, lowerable program.
    best.state.validate().unwrap();
    lower(&best.state).unwrap();
}

#[test]
fn tuned_depthwise_conv_is_functionally_correct() {
    // Small depthwise conv: tune briefly, then execute the best program in
    // the interpreter and compare with the naive reference.
    let dag = ansor::workloads::ops::depthwise_conv2d(1, 4, 12, 3, 1, 1);
    let task = SearchTask::new("dep:e2e", dag.clone(), HardwareTarget::intel_20core());
    let mut measurer = Measurer::new(task.target.clone());
    let result = auto_schedule(&task, options(32), &mut measurer);
    let best = result.best.expect("schedule found");
    let program = lower(&best.state).unwrap();

    let inputs = interp::random_inputs(&dag, 9);
    let reference = interp::run_naive(&dag, &inputs).unwrap();
    let mut remapped = std::collections::HashMap::new();
    for (name, orig) in [("A", 0usize), ("W", 1usize)] {
        let nid = program.dag.node_id(name).unwrap();
        remapped.insert(nid, inputs[&orig].clone());
    }
    let bufs = interp::run(&program, &remapped).unwrap();
    let out_ref = reference.get(dag.node_id("C").unwrap());
    let out_tuned = bufs.get(program.dag.node_id("C").unwrap());
    for (a, b) in out_tuned.iter().zip(out_ref) {
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}

#[test]
fn gpu_tuning_produces_bound_kernels() {
    let dag = workloads::ops::gmm(1, 256, 256, 256);
    let task = SearchTask::new("gmm:gpu", dag, HardwareTarget::nvidia_v100());
    let mut measurer = Measurer::new(task.target.clone());
    let result = auto_schedule(&task, options(32), &mut measurer);
    let best = result.best.expect("schedule found");
    let program = lower(&best.state).unwrap();
    // Every statement of the best GPU program runs under a thread binding.
    for s in tensor_ir::analysis::analyze(&program) {
        assert!(
            s.loops.iter().any(|l| l.ann == Annotation::BindThread),
            "unbound statement in best GPU program"
        );
    }
}

#[test]
fn task_scheduler_tunes_a_small_network() {
    let tasks = workloads::network("dcgan", 1).unwrap();
    let target = HardwareTarget::intel_20core();
    let tune_tasks: Vec<TuneTask> = tasks
        .iter()
        .map(|t| TuneTask {
            task: SearchTask::new(t.name.clone(), t.dag.clone(), target.clone()),
            weight: t.weight,
            dnn: 0,
        })
        .collect();
    let n = tune_tasks.len();
    let mut sched = TaskScheduler::new(
        tune_tasks,
        Objective::WeightedSum,
        options(1_000_000),
        TaskSchedulerConfig::default(),
    );
    let mut measurer = Measurer::new(target);
    sched.tune(n + 3, &mut measurer);
    let lat = sched.dnn_latencies()[0];
    assert!(lat.is_finite() && lat > 0.0);
    // Warm-up must have touched every task.
    assert!(sched.allocations.iter().all(|&a| a >= 1));
    // History objective is monotonically non-increasing for f1.
    let objs: Vec<f64> = sched.history.iter().map(|r| r.objective).collect();
    for w in objs.windows(2) {
        assert!(w[1] <= w[0] + 1e-12);
    }
}

#[test]
fn measured_trials_match_history_lengths() {
    let dag = workloads::ops::gmm(1, 128, 128, 128);
    let task = SearchTask::new("gmm:budget", dag, HardwareTarget::intel_20core());
    let mut measurer = Measurer::new(task.target.clone());
    let result = auto_schedule(&task, options(40), &mut measurer);
    assert_eq!(result.history.len() as u64, measurer.trials());
    assert!(result.history.len() <= 40);
    // best_seconds is the minimum of the history.
    let min = result
        .history
        .iter()
        .map(|r| r.seconds)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(result.best_seconds, min);
}
