//! Lineage replayability: every `CandidateOrigin` event a traced tuning
//! run emits must be reconstructible from the run's own records —
//! replaying the tuning log's steps for that trial yields a state with
//! the event's signature, and the event's sketch-rule chain matches the
//! derivation chain the sketch generator recorded for that sketch.
//!
//! This pins the provenance contract end to end: what `trace-report
//! --explain` attributes is exactly what the search measured.

use std::sync::Arc;

use ansor::prelude::*;
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

fn matmul_relu_task(name: &str) -> SearchTask {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[64, 64]);
    let w = b.constant("B", &[64, 64]);
    let c = b.compute_reduce("C", &[64, 64], &[64], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    b.compute("D", &[64, 64], |ax| {
        Expr::max(
            Expr::load(c, vec![ax[0].clone(), ax[1].clone()]),
            Expr::float(0.0),
        )
    });
    SearchTask::new(
        name,
        Arc::new(b.build().unwrap()),
        HardwareTarget::intel_20core(),
    )
}

fn traced_run(seed: u64) -> (SketchPolicy, Vec<TraceEvent>) {
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let task = matmul_relu_task("lineage:mm_relu_64");
    let options = TuningOptions {
        num_measure_trials: 32,
        measures_per_round: 16,
        init_population: 16,
        seed,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut policy = SketchPolicy::new(task.clone(), options);
    let mut measurer = Measurer::new(task.target.clone());
    measurer.set_telemetry(tel.clone());
    let mut model = LearnedCostModel::new();
    model.set_telemetry(tel.clone());
    while policy.tune_round(&mut model, &mut measurer) > 0 {}
    tel.flush();
    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0, "trace must be fully parseable");
    (policy, lines.into_iter().map(|l| l.event).collect())
}

#[test]
fn every_candidate_origin_replays_to_the_recorded_program() {
    for seed in [3u64, 17, 91] {
        let (policy, events) = traced_run(seed);
        let dag = policy.task.dag.clone();
        let mut checked = 0;
        for e in &events {
            let TraceEvent::CandidateOrigin {
                trial,
                sig,
                sketch,
                rules,
                generation,
                op,
                parents,
                ..
            } = e
            else {
                continue;
            };
            // The tuning log's entry for this trial replays to a state
            // with exactly the signature the event attributed.
            let rec = policy
                .log
                .iter()
                .find(|r| r.trial == *trial)
                .expect("every origin event has a tuning-log record");
            let replayed = State::replay(dag.clone(), &rec.steps).expect("steps replay");
            assert_eq!(
                replayed.signature(),
                *sig,
                "seed {seed} trial {trial}: replayed signature must match"
            );
            // The recorded rule chain is the generating sketch's chain.
            let chain = &policy.sketches()[*sketch as usize].rule_chain;
            assert_eq!(
                rules, chain,
                "seed {seed} trial {trial}: rule chain must match sketch {sketch}"
            );
            // Generation-zero candidates come from sampling (no parents);
            // evolved candidates record at least one parent signature.
            if *generation == 0 {
                assert!(parents.is_empty(), "sampled candidates have no parents");
                assert!(op == "seed" || op == "init-population", "got {op}");
            } else {
                assert!(!parents.is_empty(), "evolved candidates record parents");
            }
            checked += 1;
        }
        assert!(checked >= 32, "seed {seed}: only {checked} origins checked");
    }
}
