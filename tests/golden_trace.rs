//! The golden-trace regression gate: re-runs the canonical fixed-seed
//! tuning session ([`ansor::golden`]) and compares its trace and summary
//! byte-for-byte against the files committed under `tests/golden/`.
//!
//! Any change that shifts a single RNG draw, trace event, or measured time
//! fails here. If the drift is intentional, regenerate the files with
//! `cargo run --release --bin ansor-tune -- --bless` and commit them.

use ansor::golden::{golden_run, GoldenSummary, GOLDEN_DIR, SUMMARY_FILE, TRACE_FILE};

const BLESS_HINT: &str =
    "if this change is intentional, run `cargo run --release --bin ansor-tune -- --bless` \
     and commit the updated tests/golden/ files";

fn golden_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(GOLDEN_DIR)
        .join(file)
}

#[test]
fn tuning_trace_matches_golden_files() {
    let (events, summary) = golden_run();

    let trace_path = golden_path(TRACE_FILE);
    let committed_trace = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}; {BLESS_HINT}", trace_path.display()));
    let committed: Vec<&str> = committed_trace.lines().collect();
    assert_eq!(
        events.len(),
        committed.len(),
        "golden trace has {} events, this run produced {}; {BLESS_HINT}",
        committed.len(),
        events.len()
    );
    for (i, (got, want)) in events.iter().zip(&committed).enumerate() {
        assert_eq!(
            got,
            want,
            "golden trace drifted at event {} of {}; {BLESS_HINT}",
            i + 1,
            committed.len()
        );
    }

    let summary_path = golden_path(SUMMARY_FILE);
    let committed_summary = std::fs::read_to_string(&summary_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}; {BLESS_HINT}", summary_path.display()));
    let want: GoldenSummary =
        serde_json::from_str(&committed_summary).expect("golden summary parses");
    assert_eq!(summary, want, "golden summary drifted; {BLESS_HINT}");
}
