//! The exporter non-interference gate: a fixed-seed tuning run scraped
//! continuously over HTTP mid-run must produce the *same bytes* — the same
//! canonical trace events and the same summary — as the identical run with
//! no exporter attached. The live endpoints are read-only observers; this
//! test fails if any of them ever perturbs the search.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ansor::core::{auto_schedule_with_model, LearnedCostModel, TuningOptions};
use ansor::golden::golden_task;
use ansor::hw::Measurer;
use telemetry::export::{serve, ExportOptions};
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    Some(response)
}

/// One fixed-seed tuning session; with `scrape` the exporter serves the
/// run's registry and a background client hammers every endpoint for the
/// whole duration. Returns (canonical trace lines, trials, best seconds).
fn run_once(scrape: bool) -> (Vec<String>, u64, f64) {
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let task = golden_task();
    let options = TuningOptions {
        num_measure_trials: 32,
        measures_per_round: 16,
        init_population: 24,
        seed: 0x11FE,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut measurer = Measurer::new(task.target.clone());
    measurer.set_fault_plan(None);
    measurer.set_telemetry(tel.clone());
    let mut model = LearnedCostModel::new();
    model.set_telemetry(tel.clone());

    let mut exporter = None;
    let stop = Arc::new(AtomicBool::new(false));
    let mut scraper = None;
    if scrape {
        let server =
            serve(&tel, "127.0.0.1:0", ExportOptions::default()).expect("exporter binds port 0");
        let addr = server.local_addr().to_string();
        let stop2 = Arc::clone(&stop);
        scraper = Some(std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                for path in ["/metrics", "/status", "/healthz"] {
                    if http_get(&addr, path).is_some() {
                        scrapes += 1;
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            scrapes
        }));
        exporter = Some(server);
    }

    let result = auto_schedule_with_model(&task, options, &mut measurer, &mut model);

    if let Some(handle) = scraper {
        stop.store(true, Ordering::SeqCst);
        let scrapes = handle.join().expect("scraper thread");
        assert!(
            scrapes > 0,
            "the scraper must actually have hit the endpoints"
        );
    }
    if let Some(server) = exporter {
        server.shutdown();
    }

    tel.flush();
    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0);
    let events = lines
        .into_iter()
        .map(|l| l.event)
        .filter(|e| !matches!(e, TraceEvent::PhaseProfile { .. }))
        .map(|e| serde_json::to_string(&e).expect("event serializes"))
        .collect();
    (events, measurer.trials(), result.best_seconds)
}

#[test]
fn scraping_mid_run_does_not_change_a_single_byte() {
    let (plain_events, plain_trials, plain_best) = run_once(false);
    let (scraped_events, scraped_trials, scraped_best) = run_once(true);
    assert!(!plain_events.is_empty());
    assert_eq!(
        plain_events, scraped_events,
        "live scraping must not alter the canonical trace"
    );
    assert_eq!(plain_trials, scraped_trials);
    assert_eq!(
        plain_best.to_bits(),
        scraped_best.to_bits(),
        "best latency must be bit-identical with and without the exporter"
    );
}
