//! Crash/resume soundness: a tuning run killed after *every* checkpoint
//! boundary and resumed from the on-disk file must continue bit-identically
//! — same best program, same record log, same telemetry trace — as the run
//! that was never interrupted. Runs under whatever `ANSOR_THREADS` the CI
//! matrix sets; the determinism contract makes the comparison valid at any
//! thread count.

use std::sync::Arc;

use ansor::core::{
    LearnedCostModel, SinglePolicyCheckpoint, SketchPolicy, TuneCheckpoint, TuningRecordLog,
    CHECKPOINT_VERSION,
};
use ansor::prelude::*;
use hwsim::FaultPlan;
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

fn task() -> SearchTask {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[96, 96]);
    let w = b.constant("B", &[96, 96]);
    b.compute_reduce("C", &[96, 96], &[96], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    SearchTask::new(
        "crash_resume:mm96",
        Arc::new(b.build().unwrap()),
        HardwareTarget::intel_20core(),
    )
}

fn options(tel: Telemetry) -> TuningOptions {
    TuningOptions {
        num_measure_trials: 64,
        measures_per_round: 16,
        init_population: 24,
        seed: 0xC0DE,
        telemetry: tel,
        ..Default::default()
    }
}

// A lively fault plan so the resumed state must also carry retry/quarantine
// bookkeeping, not just the happy path.
fn plan() -> FaultPlan {
    FaultPlan {
        transient_prob: 0.25,
        timeout_prob: 0.05,
        cursed_prob: 0.05,
        max_retries: 2,
        ..FaultPlan::default()
    }
}

fn fresh(tel: &Telemetry) -> (SketchPolicy, LearnedCostModel, Measurer) {
    let t = task();
    let mut measurer = Measurer::with_faults(t.target.clone(), plan());
    measurer.set_telemetry(tel.clone());
    let mut model = LearnedCostModel::new();
    model.set_telemetry(tel.clone());
    (SketchPolicy::new(t, options(tel.clone())), model, measurer)
}

/// Canonical trace lines (wall-clock `PhaseProfile` events stripped).
fn trace_lines(buf: &SharedBuf, tel: &Telemetry) -> Vec<String> {
    tel.flush();
    let (lines, skipped) = read_trace(buf.contents().as_slice()).expect("readable trace");
    assert_eq!(skipped, 0);
    lines
        .into_iter()
        .map(|l| l.event)
        .filter(|e| !matches!(e, TraceEvent::PhaseProfile { .. }))
        .map(|e| serde_json::to_string(&e).expect("event serializes"))
        .collect()
}

struct RunResult {
    best_seconds: f64,
    best_steps: Vec<Step>,
    log: Vec<TuningRecordLog>,
    trace: Vec<String>,
    trials: u64,
    sim_fault_nanos: u64,
}

/// The uninterrupted reference run, snapshotting a checkpoint file and the
/// trace length after every round.
fn reference(dir: &std::path::Path) -> (RunResult, Vec<(std::path::PathBuf, usize)>) {
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let (mut policy, mut model, mut measurer) = fresh(&tel);
    let mut boundaries = Vec::new();
    let mut round = 0usize;
    while policy.tune_round(&mut model, &mut measurer) > 0 {
        round += 1;
        let path = dir.join(format!("round{round}.ckpt"));
        TuneCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint: "crash_resume".into(),
            measurer_trials: measurer.trials(),
            sim_fault_nanos: measurer.sim_fault_nanos(),
            records_flushed: 0,
            single: Some(SinglePolicyCheckpoint {
                policy: policy.checkpoint(),
                model: model.checkpoint(),
            }),
            scheduler: None,
        }
        .save(&path)
        .expect("checkpoint saves");
        // Events written so far = the pre-crash segment for this boundary.
        boundaries.push((path, trace_lines(&buf, &tel).len()));
    }
    let best = policy.best_individual().expect("has a best program");
    let result = RunResult {
        best_seconds: policy.best_seconds(),
        best_steps: best.state.steps.clone(),
        log: policy.log.clone(),
        trace: trace_lines(&buf, &tel),
        trials: policy.trials(),
        sim_fault_nanos: measurer.sim_fault_nanos(),
    };
    (result, boundaries)
}

/// "Kill" at a boundary: load the checkpoint file into entirely fresh
/// objects and run to completion.
fn resume_from(path: &std::path::Path) -> RunResult {
    let ck = TuneCheckpoint::load(path).expect("checkpoint loads");
    assert_eq!(ck.fingerprint, "crash_resume");
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let (mut policy, mut model, mut measurer) = fresh(&tel);
    let single = ck.single.as_ref().expect("single-op checkpoint");
    policy.restore(&single.policy).expect("policy restores");
    model.restore(&single.model);
    measurer.restore_accounting(ck.measurer_trials, ck.sim_fault_nanos);
    while policy.tune_round(&mut model, &mut measurer) > 0 {}
    let best = policy.best_individual().expect("has a best program");
    RunResult {
        best_seconds: policy.best_seconds(),
        best_steps: best.state.steps.clone(),
        log: policy.log.clone(),
        trace: trace_lines(&buf, &tel),
        trials: policy.trials(),
        sim_fault_nanos: measurer.sim_fault_nanos(),
    }
}

#[test]
fn killed_and_resumed_at_every_boundary_is_bit_identical() {
    let dir = std::env::temp_dir().join(format!("ansor-crash-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (full, boundaries) = reference(&dir);
    assert!(
        boundaries.len() >= 2,
        "need multiple rounds to test boundaries, got {}",
        boundaries.len()
    );
    assert!(full.best_seconds.is_finite());
    for (k, (path, pre_events)) in boundaries.iter().enumerate() {
        let resumed = resume_from(path);
        assert_eq!(
            resumed.best_seconds,
            full.best_seconds,
            "best seconds diverged resuming after round {}",
            k + 1
        );
        assert_eq!(
            resumed.best_steps,
            full.best_steps,
            "best program diverged resuming after round {}",
            k + 1
        );
        assert_eq!(
            resumed.log,
            full.log,
            "record log diverged resuming after round {}",
            k + 1
        );
        assert_eq!(resumed.trials, full.trials);
        assert_eq!(resumed.sim_fault_nanos, full.sim_fault_nanos);
        // Pre-crash trace segment + post-resume trace = uninterrupted trace.
        let stitched: Vec<String> = full.trace[..*pre_events]
            .iter()
            .cloned()
            .chain(resumed.trace.iter().cloned())
            .collect();
        assert_eq!(
            stitched,
            full.trace,
            "trace diverged resuming after round {}",
            k + 1
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
