//! Property-based tests on the core invariants:
//!
//! - every randomly sampled program preserves the semantics of its naive
//!   program (interpreter equivalence);
//! - split/fuse/reorder preserve the iteration volume;
//! - replaying a program's steps reproduces it exactly;
//! - tile-size mutation preserves validity;
//! - the measurer is deterministic.

use std::collections::HashMap;
use std::sync::Arc;

use ansor::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small random matmul(+relu) DAG parameterized by divisor-rich shapes.
fn small_dag(n: i64, m: i64, k: i64, relu: bool) -> Arc<ComputeDag> {
    let mut b = DagBuilder::new();
    let a = b.placeholder("A", &[n, k]);
    let w = b.constant("B", &[k, m]);
    let c = b.compute_reduce("C", &[n, m], &[k], Reducer::Sum, |ax| {
        Expr::load(a, vec![ax[0].clone(), ax[2].clone()])
            * Expr::load(w, vec![ax[2].clone(), ax[1].clone()])
    });
    if relu {
        b.compute("D", &[n, m], |ax| {
            Expr::max(
                Expr::load(c, vec![ax[0].clone(), ax[1].clone()]),
                Expr::float(0.0),
            )
        });
    }
    Arc::new(b.build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sampled_programs_preserve_semantics(
        seed in 0u64..1000,
        n in prop::sample::select(vec![4i64, 8, 12, 16]),
        m in prop::sample::select(vec![4i64, 6, 8]),
        k in prop::sample::select(vec![4i64, 8, 12]),
        relu in any::<bool>(),
    ) {
        let dag = small_dag(n, m, k, relu);
        let task = SearchTask::new("prop", dag.clone(), HardwareTarget::intel_20core());
        let sketches = generate_sketches(&task);
        prop_assert!(!sketches.is_empty());
        let cfg = AnnotationConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = (seed as usize) % sketches.len();
        if let Some(state) = sample_program(&sketches[idx], &task, &cfg, &mut rng) {
            state.validate().unwrap();
            let program = lower(&state).unwrap();
            let inputs = interp::random_inputs(&dag, seed);
            let reference = interp::run_naive(&dag, &inputs).unwrap();
            // Remap inputs by name (cache/rfactor stages shift node ids).
            let mut remapped = HashMap::new();
            for (name, orig) in [("A", 0usize), ("B", 1usize)] {
                let nid = program.dag.node_id(name).unwrap();
                remapped.insert(nid, inputs[&orig].clone());
            }
            let bufs = interp::run(&program, &remapped).unwrap();
            let out = if relu { "D" } else { "C" };
            let ref_id = dag.node_id(out).unwrap();
            let got_id = program.dag.node_id(out).unwrap();
            for (a, b) in bufs.get(got_id).iter().zip(reference.get(ref_id)) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn splits_preserve_iteration_volume(
        l1 in prop::sample::select(vec![1i64, 2, 4, 8]),
        l2 in prop::sample::select(vec![1i64, 2, 4]),
        pos in 0usize..3,
    ) {
        prop_assume!(16 % (l1 * l2) == 0);
        let dag = small_dag(16, 16, 16, false);
        let mut st = State::new(dag);
        let axis = ["i", "j", "k"][pos];
        st.apply(Step::Split {
            node: "C".into(),
            iter: axis.into(),
            lengths: vec![l1, l2],
        }).unwrap();
        let sid = st.stage_by_node_name("C").unwrap();
        prop_assert_eq!(st.stages[sid].loop_volume(), 16 * 16 * 16);
        st.validate().unwrap();
    }

    #[test]
    fn replay_is_exact(
        seed in 0u64..500,
    ) {
        let dag = small_dag(16, 8, 8, true);
        let task = SearchTask::new("prop", dag.clone(), HardwareTarget::intel_20core());
        let sketches = generate_sketches(&task);
        let cfg = AnnotationConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = (seed as usize) % sketches.len();
        if let Some(state) = sample_program(&sketches[idx], &task, &cfg, &mut rng) {
            let replayed = State::replay(dag, &state.steps).unwrap();
            prop_assert_eq!(replayed.stages, state.stages);
        }
    }

    #[test]
    fn tile_mutation_yields_valid_programs(
        seed in 0u64..500,
    ) {
        let dag = small_dag(16, 16, 16, true);
        let task = SearchTask::new("prop", dag.clone(), HardwareTarget::intel_20core());
        let sketches = generate_sketches(&task);
        let cfg = AnnotationConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = (seed as usize) % sketches.len();
        if let Some(state) = sample_program(&sketches[idx], &task, &cfg, &mut rng) {
            let parent = Individual::new(state, idx);
            for _ in 0..4 {
                if let Some(child) =
                    ansor::core::evolution::mutate(&task, &sketches, &parent, &cfg, &mut rng)
                {
                    child.state.validate().unwrap();
                    lower(&child.state).unwrap();
                }
            }
        }
    }

    #[test]
    fn measurer_is_deterministic(
        seed in 0u64..200,
    ) {
        let dag = small_dag(16, 16, 16, false);
        let task = SearchTask::new("prop", dag.clone(), HardwareTarget::intel_20core());
        let sketches = generate_sketches(&task);
        let cfg = AnnotationConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(state) = sample_program(&sketches[0], &task, &cfg, &mut rng) {
            let mut m1 = Measurer::new(task.target.clone());
            let mut m2 = Measurer::new(task.target.clone());
            prop_assert_eq!(m1.measure(&state).seconds, m2.measure(&state).seconds);
        }
    }
}
