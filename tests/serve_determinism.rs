//! The `ansor-serve` determinism contract, end to end: a job submitted to
//! the daemon must produce the *same tuning run* as the same `(task,
//! options, seed)` driven cold through a local [`TuningSession`] — the
//! path `ansor-tune` takes. "Same" means bit-identical `best_seconds`,
//! identical best-state signature, and an identical tuning-record log
//! (compared by the FNV fingerprint the server reports).
//!
//! The contract must survive concurrency: eight jobs run on four workers
//! — sharing the store's per-class measure cache and the store-wide
//! feature cache — must report exactly the results of the same eight jobs
//! run one at a time. Caches may change *when* a measurement is computed,
//! never *what* it is.
//!
//! Runs under whatever `ANSOR_THREADS` the CI matrix sets (the runtime
//! reads the variable itself), so the 1- and 4-thread legs both cover it.

use ansor::core::{log_fingerprint, TuningSession};
use ansor::prelude::*;
use ansor::serve::{Client, JobResult, JobSpec, ServeConfig, Server};
use ansor::workloads::build_case;

const OP: &str = "GMM";
const SHAPE: usize = 0;
const TRIALS: usize = 48;

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        op: OP.into(),
        shape: SHAPE,
        batch: 1,
        target: "intel".into(),
        trials: TRIALS,
        seed,
        warm_start: None,
        threads: None,
        faults: None,
        prerank_keep: None,
        transfer: None,
    }
}

/// What the contract compares, reduced to plain bits.
#[derive(Debug, PartialEq)]
struct Outcome {
    best_seconds_bits: Option<u64>,
    best_signature: Option<u64>,
    log_records: u64,
    log_fingerprint: u64,
}

impl Outcome {
    fn of_result(r: &JobResult) -> Outcome {
        Outcome {
            best_seconds_bits: r.best_seconds.map(f64::to_bits),
            best_signature: r.best_signature,
            log_records: r.log_records,
            log_fingerprint: r.log_fingerprint,
        }
    }
}

/// Runs the spec cold — no daemon, no shared caches — exactly as
/// `ansor-tune` does.
fn cold_run(spec: &JobSpec) -> Outcome {
    let dag = build_case(&spec.op, spec.shape, spec.batch).expect("known case");
    let target = HardwareTarget::by_name(&spec.target).expect("known target");
    let task = SearchTask::new(spec.task_name(), dag, target.clone());
    let options = TuningOptions {
        num_measure_trials: spec.trials,
        seed: spec.seed,
        ..Default::default()
    };
    let measurer = Measurer::new(target);
    let mut session = TuningSession::new(task, options, measurer, spec.fingerprint("none"));
    session.run(|_| true);
    let best = session.best_seconds();
    Outcome {
        best_seconds_bits: best.is_finite().then(|| best.to_bits()),
        best_signature: session.best_individual().map(|i| i.state.signature()),
        log_records: session.log().len() as u64,
        log_fingerprint: log_fingerprint(session.log()),
    }
}

fn start_server(workers: usize) -> (Server, Client) {
    let server = Server::start(ServeConfig {
        workers,
        queue_cap: 32,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let client = Client::connect(&server.local_addr().to_string()).expect("client connects");
    (server, client)
}

/// Submits every spec, then waits for each; results come back in
/// submission order.
fn run_batch(client: &mut Client, specs: &[JobSpec]) -> Vec<JobResult> {
    let ids: Vec<String> = specs
        .iter()
        .map(|s| client.submit(s.clone()).expect("submit"))
        .collect();
    ids.iter()
        .map(|id| client.wait(id).expect("wait"))
        .collect()
}

// One test function on purpose: each leg boots a daemon with worker
// threads, and serialising them keeps the measurement-timing environment
// (and the test's runtime) predictable.
#[test]
fn served_jobs_match_cold_runs_and_concurrency_is_invisible() {
    // Leg 1 — a served job is bit-identical to the cold `ansor-tune` path.
    let (server, mut client) = start_server(1);
    let served = run_batch(&mut client, &[spec(5)]);
    let cold = cold_run(&spec(5));
    assert_eq!(served[0].state, "done");
    assert_eq!(
        Outcome::of_result(&served[0]),
        cold,
        "served job must be bit-identical to a cold local run"
    );
    assert!(
        served[0].log_records >= 32,
        "run must fill most of its budget"
    );
    client.shutdown(true).expect("shutdown");
    server.wait();

    // The comparison is not vacuous: another seed tunes differently.
    let other = cold_run(&spec(6));
    assert_ne!(cold, other, "seeds must matter");

    // Leg 2 — eight jobs on four workers vs the same eight serially.
    // Identical class (op/shape/target), distinct seeds: the concurrent
    // batch shares one measure cache and races on it; the serial batch
    // runs one job at a time on a fresh daemon. Outcomes must match
    // job-for-job.
    let seeds: Vec<u64> = (0..8).collect();
    let specs: Vec<JobSpec> = seeds.iter().map(|&s| spec(s)).collect();

    let (server, mut client) = start_server(4);
    let concurrent = run_batch(&mut client, &specs);
    client.shutdown(true).expect("shutdown");
    server.wait();

    let (server, mut client) = start_server(1);
    let serial: Vec<JobResult> = specs
        .iter()
        .map(|s| {
            let id = client.submit(s.clone()).expect("submit");
            client.wait(&id).expect("wait")
        })
        .collect();
    client.shutdown(true).expect("shutdown");
    server.wait();

    for ((seed, con), ser) in seeds.iter().zip(&concurrent).zip(&serial) {
        assert_eq!(con.state, "done", "seed {seed}");
        assert_eq!(
            Outcome::of_result(con),
            Outcome::of_result(ser),
            "concurrent result for seed {seed} must match the serial run"
        );
    }
    // Eight distinct seeds must not have collapsed to one search.
    let distinct: std::collections::HashSet<u64> =
        serial.iter().map(|r| r.log_fingerprint).collect();
    assert!(distinct.len() > 1, "distinct seeds must search differently");

    // And seed 5's serial-daemon result equals the cold run from leg 1,
    // tying all three paths (cold, solo daemon, batch daemon) together.
    assert_eq!(Outcome::of_result(&serial[5]), cold, "seed 5 round trip");
}
