//! The per-job observability contract, end to end:
//!
//! 1. A served job's provenance trace — written by the daemon under
//!    `--trace-dir`, pulled over the protocol with `Client::trace` — must
//!    be **bit-identical** in its canonical event stream to the same-seed
//!    cold run `ansor-tune --trace` performs. Observability never changes
//!    what the search did, and the trace a client pulls is the truth.
//! 2. Per-job counter summaries must reconcile: every job's
//!    `JobResult.counters` accounts for its own trials, and the daemon's
//!    `ServerStats.trials_total` equals the sum over job results.
//! 3. The job journal must feed `trace-report --serve`: per-job lifecycle
//!    rows plus fleet-wide operator/rule efficacy aggregated across at
//!    least two concurrently-run jobs.

use ansor::core::{TuningOptions, TuningSession};
use ansor::prelude::*;
use ansor::serve::{Client, JobSpec, ServeConfig, Server};
use ansor::workloads::build_case;
use ansor_bench::serve_report::ServeReport;
use telemetry::{read_trace, SharedBuf, Telemetry, TraceEvent};

const TRIALS: usize = 48;

fn spec(seed: u64) -> JobSpec {
    JobSpec {
        op: "GMM".into(),
        shape: 0,
        batch: 1,
        target: "intel".into(),
        trials: TRIALS,
        seed,
        warm_start: None,
        threads: None,
        faults: None,
        prerank_keep: None,
        transfer: None,
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ansor-observability-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The determinism-comparable form of a trace: one canonical JSON line
/// per event, wall-clock envelope (`seq`/`t_ms`) and the final
/// `PhaseProfile` dropped — exactly what `trace-report --events` writes.
fn canonical_events(raw: &[u8]) -> Vec<String> {
    let (lines, skipped) = read_trace(raw).expect("trace parses");
    assert_eq!(skipped, 0, "corrupt lines in trace");
    lines
        .into_iter()
        .map(|l| l.event)
        .filter(|e| !matches!(e, TraceEvent::PhaseProfile { .. }))
        .map(|e| serde_json::to_string(&e).expect("event serializes"))
        .collect()
}

/// Runs the spec cold with a trace sink — the `ansor-tune --trace` path —
/// and returns the raw trace bytes.
fn cold_traced_run(spec: &JobSpec) -> Vec<u8> {
    let buf = SharedBuf::new();
    let tel = Telemetry::to_writer(Box::new(buf.clone()));
    let dag = build_case(&spec.op, spec.shape, spec.batch).expect("known case");
    let target = HardwareTarget::by_name(&spec.target).expect("known target");
    let task = SearchTask::new(spec.task_name(), dag, target.clone());
    let options = TuningOptions {
        num_measure_trials: spec.trials,
        seed: spec.seed,
        telemetry: tel.clone(),
        ..Default::default()
    };
    let mut measurer = Measurer::new(target);
    measurer.set_telemetry(tel.clone());
    let mut session = TuningSession::new(task, options, measurer, spec.fingerprint("none"));
    session.run(|_| true);
    tel.flush();
    buf.contents()
}

#[test]
fn served_trace_is_bit_identical_to_cold_tune_trace() {
    let dir = temp_dir("bit-identity");
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 8,
        trace_dir: Some(dir.join("traces").to_string_lossy().to_string()),
        journal_path: Some(dir.join("journal.jsonl").to_string_lossy().to_string()),
        ..Default::default()
    })
    .expect("server starts");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");

    let id = client.submit(spec(5)).expect("submit");
    let result = client.wait(&id).expect("wait");
    assert_eq!(result.state, "done");

    // The served trace, pulled over the protocol.
    let served = client.trace(&id).expect("trace");
    let served_events = canonical_events(served.as_bytes());
    assert!(
        served_events.len() > TRIALS,
        "suspiciously thin trace: {} events",
        served_events.len()
    );

    // The same seed driven cold through the `ansor-tune --trace` path.
    let cold_events = canonical_events(&cold_traced_run(&spec(5)));
    assert_eq!(
        served_events, cold_events,
        "served job's canonical event stream must equal the cold run's, byte for byte"
    );
    // Not vacuous: a different seed must trace differently.
    let other_events = canonical_events(&cold_traced_run(&spec(6)));
    assert_ne!(served_events, other_events, "seeds must matter");

    // Counter reconciliation: the per-job summary accounts for every
    // trial, and the daemon's running total matches the sum over jobs.
    let c = &result.counters;
    assert_eq!(c.trials_valid + c.trials_failed, result.trials);
    assert!(!c.phase_seconds.is_empty(), "no phase breakdown");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.trials_total, result.trials);

    client.shutdown(true).expect("shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_feeds_serve_report_with_fleet_efficacy() {
    let dir = temp_dir("serve-report");
    let journal = dir.join("journal.jsonl");
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 8,
        trace_dir: Some(dir.join("traces").to_string_lossy().to_string()),
        journal_path: Some(journal.to_string_lossy().to_string()),
        ..Default::default()
    })
    .expect("server starts");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connect");

    // Two jobs in flight at once on two workers.
    let a = client.submit(spec(1)).expect("submit");
    let b = client.submit(spec(2)).expect("submit");
    let ra = client.wait(&a).expect("wait");
    let rb = client.wait(&b).expect("wait");
    assert_eq!(ra.state, "done");
    assert_eq!(rb.state, "done");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.trials_total,
        ra.trials + rb.trials,
        "daemon trial total must equal the sum of per-job results"
    );
    client.shutdown(true).expect("shutdown");
    server.wait();

    let report = ServeReport::build(&journal).expect("journal readable");
    assert_eq!(report.daemon_starts, 1);
    assert_eq!(report.jobs.len(), 2);
    for row in &report.jobs {
        assert_eq!(row.outcome, "done", "{row:?}");
        assert_eq!(row.trials, TRIALS as u64);
        assert!(row.queue_wait_ms.is_some(), "{row:?}");
        assert!(row.wall_ms.is_some(), "{row:?}");
        assert!(row.best_gflops.is_some(), "{row:?}");
        assert!(row.trace.is_some(), "{row:?}");
    }
    assert_eq!(report.traces_read, 2);
    assert_eq!(report.traces_missing, 0);
    assert!(
        !report.operator_efficacy.is_empty(),
        "fleet operator efficacy empty"
    );
    assert!(
        !report.rule_efficacy.is_empty(),
        "fleet rule efficacy empty"
    );
    // Aggregation really spans both jobs: every funnel count is at least
    // what a single job contributes, and proposals were recorded.
    let proposed: u64 = report.operator_efficacy.values().map(|e| e.proposed).sum();
    assert!(proposed > 0, "no operator proposals aggregated");
    let _ = std::fs::remove_dir_all(&dir);
}
